package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled key=value logging. The format is one line per event:
//
//	2026-08-05T12:00:00Z level=info msg="trained" threshold=0.124 f1=0.93
//
// machine-greppable without a parsing dependency. The package-level
// logger writes to stderr at Info; prodigyd's -log-level flag adjusts it.

// Level orders log severities; lower is more severe.
type Level int32

const (
	LevelError Level = iota
	LevelWarn
	LevelInfo
	LevelDebug
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelError:
		return "error"
	case LevelWarn:
		return "warn"
	case LevelInfo:
		return "info"
	case LevelDebug:
		return "debug"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel converts a flag value ("error", "warn", "info", "debug") to
// a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "error":
		return LevelError, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "info":
		return LevelInfo, nil
	case "debug":
		return LevelDebug, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want error, warn, info or debug)", s)
}

// logLines counts emitted lines by level, so a noisy component is visible
// on /metrics before anyone reads the logs.
var logLines = Default.NewCounterVec("log_lines_total", "Log lines emitted, by level.", "level")

// logDropped counts lines suppressed by the rate limiter, so sampling is
// itself observable: a large value means something below Error is firing
// per-row and being (correctly) silenced.
var logDropped = Default.NewCounter("log_dropped_total",
	"Log lines dropped by the token-bucket rate limiter.")

// Logger is a leveled key=value logger. Safe for concurrent use.
type Logger struct {
	level atomic.Int32
	mu    sync.Mutex
	out   io.Writer
	// limiter, when set, samples lines below Error severity: a line only
	// writes if the bucket grants a token; denied lines still count in
	// log_dropped_total. Error lines always pass — rate limiting must
	// never eat the line that explains an outage.
	limiter atomic.Pointer[TokenBucket]
	// now is stubbed in tests for deterministic timestamps.
	now func() time.Time
}

// NewLogger returns a logger writing lines at or above lvl to out.
func NewLogger(out io.Writer, lvl Level) *Logger {
	l := &Logger{out: out, now: time.Now}
	l.level.Store(int32(lvl))
	return l
}

// SetLevel adjusts the minimum emitted level.
func (l *Logger) SetLevel(lvl Level) { l.level.Store(int32(lvl)) }

// SetRateLimit installs a token-bucket sampler over Warn and below:
// lines beyond rate/sec (burst capacity `burst`) are dropped and counted
// in log_dropped_total. Error lines are never limited. Use ClearRateLimit
// to remove sampling entirely; rate<=0 with burst 0 drops every
// non-error line.
func (l *Logger) SetRateLimit(rate, burst float64) {
	l.limiter.Store(NewTokenBucket(rate, burst))
}

// ClearRateLimit removes the sampler; every enabled line writes again.
func (l *Logger) ClearRateLimit() { l.limiter.Store(nil) }

// Enabled reports whether lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool { return int32(lvl) <= l.level.Load() }

// Error logs at error level. kv is alternating key, value pairs.
func (l *Logger) Error(msg string, kv ...interface{}) { l.log(LevelError, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...interface{}) { l.log(LevelWarn, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...interface{}) { l.log(LevelInfo, msg, kv) }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...interface{}) { l.log(LevelDebug, msg, kv) }

func (l *Logger) log(lvl Level, msg string, kv []interface{}) {
	if !l.Enabled(lvl) {
		return
	}
	if lvl > LevelError {
		if b := l.limiter.Load(); b != nil && !b.Allow() {
			logDropped.Inc()
			return
		}
	}
	logLines.With(lvl.String()).Inc()
	var b strings.Builder
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(lvl.String())
	b.WriteString(" msg=")
	b.WriteString(valueString(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(keyString(kv[i]))
		b.WriteByte('=')
		b.WriteString(valueString(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !MISSING=")
		b.WriteString(valueString(kv[len(kv)-1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.out, b.String())
	l.mu.Unlock()
}

func keyString(k interface{}) string {
	s := fmt.Sprintf("%v", k)
	if s == "" {
		return "!EMPTYKEY"
	}
	if strings.ContainsAny(s, " =\"\n") {
		return strconv.Quote(s)
	}
	return s
}

func valueString(v interface{}) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		s = t.Error()
	case fmt.Stringer:
		s = t.String()
	case float64:
		return strconv.FormatFloat(t, 'g', 6, 64)
	case float32:
		return strconv.FormatFloat(float64(t), 'g', 6, 32)
	default:
		s = fmt.Sprintf("%v", t)
	}
	if s == "" || strings.ContainsAny(s, " =\"\n") {
		return strconv.Quote(s)
	}
	return s
}

// Log is the process-wide logger (stderr, Info).
var Log = NewLogger(os.Stderr, LevelInfo)

// SetLogLevel adjusts the process-wide logger.
func SetLogLevel(lvl Level) { Log.SetLevel(lvl) }

// Error logs to the process-wide logger.
func Error(msg string, kv ...interface{}) { Log.Error(msg, kv...) }

// Warn logs to the process-wide logger.
func Warn(msg string, kv ...interface{}) { Log.Warn(msg, kv...) }

// Info logs to the process-wide logger.
func Info(msg string, kv ...interface{}) { Log.Info(msg, kv...) }

// Debug logs to the process-wide logger.
func Debug(msg string, kv ...interface{}) { Log.Debug(msg, kv...) }
