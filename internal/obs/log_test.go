package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }

func testLogger(lvl Level) (*Logger, *strings.Builder) {
	var b strings.Builder
	l := NewLogger(&b, lvl)
	l.now = fixedClock
	return l, &b
}

func TestLoggerFormat(t *testing.T) {
	l, b := testLogger(LevelDebug)
	l.Info("model trained", "threshold", 0.125, "jobs", 24, "system", "eclipse volta")
	want := `2026-08-05T12:00:00Z level=info msg="model trained" threshold=0.125 jobs=24 system="eclipse volta"` + "\n"
	if b.String() != want {
		t.Fatalf("log line:\n got %q\nwant %q", b.String(), want)
	}
}

func TestLoggerLevels(t *testing.T) {
	l, b := testLogger(LevelWarn)
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("also shown", "err", errors.New("boom"))
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("suppressed levels leaked: %q", out)
	}
	if !strings.Contains(out, "level=warn msg=shown") || !strings.Contains(out, "level=error") || !strings.Contains(out, "err=boom") {
		t.Fatalf("missing lines: %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(b.String(), "level=debug") {
		t.Fatal("SetLevel did not lower the threshold")
	}
}

func TestLoggerOddKV(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Info("oops", "dangling")
	if !strings.Contains(b.String(), "!MISSING=dangling") {
		t.Fatalf("odd kv not flagged: %q", b.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"error": LevelError, "WARN": LevelWarn, "warning": LevelWarn, " info ": LevelInfo, "debug": LevelDebug} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

// Concurrent writers must interleave whole lines, never bytes.
func TestLoggerConcurrent(t *testing.T) {
	l, b := testLogger(LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Info("tick", "n", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 16*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 16*200)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "2026-08-05T12:00:00Z level=info msg=tick n=") {
			t.Fatalf("torn line: %q", line)
		}
	}
}
