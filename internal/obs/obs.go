// Package obs is Prodigy's self-monitoring substrate: a stdlib-only
// process-wide metrics registry (atomic counters, gauges and fixed-bucket
// histograms with percentile summaries), Prometheus text exposition,
// lightweight span tracing, and a leveled key=value logger.
//
// Prodigy is itself a monitoring system; the paper's deployment story
// (§6) runs it in production at Eclipse/Volta scale, and a detector that
// watches a supercomputer must itself be watchable. Every layer of the
// reproduction reports here — the HTTP serving layer, the scoring
// pipeline, the training loop and the streaming detector — and the
// `/metrics`, `/debug/vars` and `/debug/pprof` endpoints of prodigyd
// expose the result.
//
// Design constraints, in order: (1) hot-path cost is a handful of atomic
// operations — instrumentation must stay invisible next to matrix math;
// (2) bounded cardinality — label values come from small closed sets
// (routes, status classes, drop reasons), never from user input; (3) no
// dependencies — the registry speaks Prometheus text exposition v0.0.4
// directly.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric type names used in `# TYPE` exposition lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefBuckets are the default latency buckets in seconds (the Prometheus
// client convention), suitable for request and stage durations.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ScoreBuckets cover reconstruction-error magnitudes: healthy scores sit
// well below typical thresholds (~0.05–0.3 on scaled features), anomalies
// push past 1.
var ScoreBuckets = []float64{.01, .02, .05, .1, .15, .2, .3, .5, .75, 1, 1.5, 2.5}

// LagBuckets cover ingestion staleness in (possibly simulated) seconds.
var LagBuckets = []float64{1, 2, 5, 10, 30, 60, 120, 300}

// Registry holds metric families. All methods are safe for concurrent
// use; the intended pattern is package-level metric variables created once
// from Default at init time, then updated lock-free on hot paths.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	hooks []func()
}

// Default is the process-wide registry every Prodigy component reports to.
var Default = NewRegistry()

// processStart anchors uptime reporting.
var processStart = time.Now()

// Uptime returns how long the process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// NewRegistry returns an empty registry (tests use this; production code
// uses Default).
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// OnCollect registers a hook run at the start of every exposition pass —
// the place to refresh gauges whose value is computed on demand (uptime,
// queue depths).
func (r *Registry) OnCollect(f func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// family is one named metric with a fixed label schema; each distinct
// label-value combination is a series.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*seriesEntry
}

type seriesEntry struct {
	values []string
	metric interface{} // *Counter, *Gauge or *Histogram
}

// family returns the named family, creating it on first use. Re-registering
// with a different type or label schema is a programming error and panics:
// silent divergence would corrupt the exposition.
func (r *Registry) family(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*seriesEntry),
	}
	r.fams[name] = f
	return f
}

// seriesKey joins label values into an injective map key: the separator
// and backslash are escaped inside values, so distinct label tuples can
// never collide (("a\x1f","x") vs ("a","\x1fx")). The closed in-repo
// vocabularies never contain either byte, so the hot path stays a plain
// join.
func seriesKey(values []string) string {
	escape := false
	for _, v := range values {
		if strings.ContainsAny(v, "\x1f\\") {
			escape = true
			break
		}
	}
	if !escape {
		return strings.Join(values, "\x1f")
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		for j := 0; j < len(v); j++ {
			if c := v[j]; c == '\\' || c == '\x1f' {
				b.WriteByte('\\')
			}
			b.WriteByte(v[j])
		}
	}
	return b.String()
}

// get returns the series for the given label values, creating it on first
// use via make.
func (f *family) get(values []string, make func(vals []string) interface{}) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants labels %v, got %d values", f.name, f.labels, len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	e, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return e.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.series[key]; ok {
		return e.metric
	}
	vals := append([]string(nil), values...)
	m := make(vals)
	f.series[key] = &seriesEntry{values: vals, metric: m}
	return m
}

// --- atomic float64 helpers ---

func loadFloat(bits *atomic.Uint64) float64 { return math.Float64frombits(bits.Load()) }

func storeFloat(bits *atomic.Uint64, v float64) { bits.Store(math.Float64bits(v)) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// --- Counter ---

// Counter is a monotonically increasing value. All methods are lock-free
// and safe for concurrent use.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { addFloat(&c.bits, 1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if v > 0 {
		addFloat(&c.bits, v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return loadFloat(&c.bits) }

// CounterVec is a counter family with labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (in declaration
// order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.get(values, func([]string) interface{} { return &Counter{} }).(*Counter)
}

// NewCounterVec registers (or returns) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, typeCounter, labels, nil)}
}

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterVec(name, help).With()
}

// --- Gauge ---

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { storeFloat(&g.bits, v) }

// Add shifts the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return loadFloat(&g.bits) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.get(values, func([]string) interface{} { return &Gauge{} }).(*Gauge)
}

// NewGaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, typeGauge, labels, nil)}
}

// NewGauge registers (or returns) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewGaugeVec(name, help).With()
}

// --- Histogram ---

// Histogram counts observations into fixed buckets and tracks their sum.
// Observe is a bucket search plus two atomic adds; percentile summaries
// are estimated from the bucket counts on demand.
type Histogram struct {
	upper   []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return loadFloat(&h.sumBits) }

// snapshot returns cumulative bucket counts, total and sum, read once.
func (h *Histogram) snapshot() (cum []uint64, total uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), h.Sum()
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket that contains it — the same estimate Prometheus's
// histogram_quantile computes server-side. Returns 0 with no observations;
// observations in the overflow (+Inf) bucket clamp to the largest finite
// bound.
func (h *Histogram) Quantile(q float64) float64 {
	cum, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	for i, c := range cum {
		if float64(c) >= rank {
			if i >= len(h.upper) { // overflow bucket
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			prev := uint64(0)
			if i > 0 {
				lo = h.upper[i-1]
				prev = cum[i-1]
			}
			width := h.upper[i] - lo
			inBucket := float64(cum[i] - prev)
			if inBucket == 0 {
				return h.upper[i]
			}
			return lo + width*(rank-float64(prev))/inBucket
		}
	}
	return h.upper[len(h.upper)-1]
}

// HistogramVec is a histogram family with labels; every series shares the
// family's bucket layout.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	buckets := v.fam.buckets
	return v.fam.get(values, func([]string) interface{} { return newHistogram(buckets) }).(*Histogram)
}

// NewHistogramVec registers (or returns) a labeled histogram family with
// the given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, buckets))
	}
	return &HistogramVec{fam: r.family(name, help, typeHistogram, labels, buckets)}
}

// NewHistogram registers (or returns) an unlabeled histogram.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.NewHistogramVec(name, help, buckets).With()
}
