package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammering drives counters, gauges and histograms from many
// goroutines at once; run under -race this is the data-race regression for
// the whole metrics layer, and the final values prove no increment is lost.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	ctr := r.NewCounterVec("hammer_total", "t", "worker")
	gauge := r.NewGauge("hammer_gauge", "t")
	hist := r.NewHistogram("hammer_seconds", "t", []float64{0.1, 1, 10})

	const workers = 32
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%4))
			for i := 0; i < perWorker; i++ {
				ctr.With(label).Inc()
				gauge.Add(1)
				gauge.Add(-1)
				hist.Observe(float64(i%3) + 0.05)
			}
		}(w)
	}
	wg.Wait()

	var total float64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += ctr.With(l).Value()
	}
	if total != workers*perWorker {
		t.Fatalf("counter lost increments: %v != %v", total, workers*perWorker)
	}
	if g := gauge.Value(); g != 0 {
		t.Fatalf("gauge should balance to 0, got %v", g)
	}
	if c := hist.Count(); c != workers*perWorker {
		t.Fatalf("histogram count %d != %d", c, workers*perWorker)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("neg_total", "t")
	c.Add(3)
	c.Add(-5)
	if c.Value() != 3 {
		t.Fatalf("counter = %v, want 3", c.Value())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "t", []float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
	// 100 observations uniform in (0, 4]: 25 per unit interval.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-2) > 0.5 {
		t.Fatalf("p50 = %v, want ≈2", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 3 || p99 > 4 {
		t.Fatalf("p99 = %v, want in (3,4]", p99)
	}
	// Overflow observations clamp to the largest finite bound.
	h.Observe(1e9)
	if q := h.Quantile(0.9999); q != 8 {
		t.Fatalf("overflow quantile = %v, want 8", q)
	}
}

// TestExpositionGolden pins the exact Prometheus text exposition: family
// ordering, label escaping, histogram bucket cumulation. A format drift
// here breaks real scrapers, so the expected text is spelled out in full.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("api_requests_total", "Requests served.", "route", "class")
	c.With("/api/jobs", "2xx").Add(3)
	c.With("/api/jobs", "5xx").Inc()
	r.NewGauge("build_info", "Fixed gauge.").Set(1)
	// Observations are exact binary fractions so the _sum line is stable.
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	r.NewCounterVec("weird_total", `Help with \ backslash`, "v").With(`quote"and\slash`).Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP api_requests_total Requests served.
# TYPE api_requests_total counter
api_requests_total{route="/api/jobs",class="2xx"} 3
api_requests_total{route="/api/jobs",class="5xx"} 1
# HELP build_info Fixed gauge.
# TYPE build_info gauge
build_info 1
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 3.25
latency_seconds_count 4
# HELP weird_total Help with \\ backslash
# TYPE weird_total counter
weird_total{v="quote\"and\\slash"} 1
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestCollectHookRefreshesGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("computed", "t")
	calls := 0
	r.OnCollect(func() { calls++; g.Set(float64(calls)) })
	var b strings.Builder
	r.WritePrometheus(&b)
	if calls != 1 || g.Value() != 1 {
		t.Fatalf("hook not run: calls=%d gauge=%v", calls, g.Value())
	}
	if !strings.Contains(b.String(), "computed 1\n") {
		t.Fatalf("exposition missing refreshed gauge:\n%s", b.String())
	}
}

func TestReregistrationPanicsOnTypeMismatch(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dual_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.NewGauge("dual_total", "t")
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("snap_total", "t").Add(2)
	h := r.NewHistogram("snap_seconds", "t", []float64{1, 2})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["snap_total"] != 2.0 {
		t.Fatalf("snapshot counter = %v", snap["snap_total"])
	}
	hm, ok := snap["snap_seconds"].(map[string]interface{})
	if !ok || hm["count"].(uint64) != 1 {
		t.Fatalf("snapshot histogram = %#v", snap["snap_seconds"])
	}
}
