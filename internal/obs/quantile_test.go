package obs

import (
	"math"
	"math/rand"
	"testing"
)

// Histogram.Quantile accuracy suite: exact interpolation arithmetic on
// hand-built bucket contents, known distributions against realistic
// bucket layouts, and the edge-bucket/empty contracts the alert engine's
// quantile-over-time queries inherit.

// TestHistogramQuantileExactInterpolation pins the linear-interpolation
// formula on buckets whose contents are chosen by hand, so the expected
// values are exact (no tolerance).
func TestHistogramQuantileExactInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("exact_seconds", "t", []float64{10, 20, 40})
	// 10 obs in (0,10], 30 in (10,20], 60 in (20,40]. Total 100.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(15)
	}
	for i := 0; i < 60; i++ {
		h.Observe(30)
	}
	cases := []struct{ q, want float64 }{
		// rank 5 falls in the first bucket: 0 + 10*(5/10) = 5.
		{0.05, 5},
		// rank 10 is exactly the first bucket's cumulative count: 10.
		{0.10, 10},
		// rank 25 in second bucket: 10 + 10*(25-10)/30 = 15.
		{0.25, 15},
		// rank 70 in third bucket: 20 + 20*(70-40)/60 = 30.
		{0.70, 30},
		// rank 100 = top of last finite bucket: 40.
		{1.00, 40},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want exactly %v", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileUniformDefBuckets checks against the true
// quantiles of a uniform distribution on the default latency buckets —
// interpolation error is bounded by bucket width, asserted per-case.
func TestHistogramQuantileUniformDefBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("uni_seconds", "t", DefBuckets)
	rng := rand.New(rand.NewSource(11))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64()) // uniform on [0,1)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.5, 0.02}, // inside (0.25, 0.5] bucket, width 0.25
		{0.9, 0.9, 0.03}, // inside (0.5, 1] bucket, width 0.5
		{0.99, 0.99, 0.03},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("uniform p%v = %v, want %v ±%v", tc.q*100, got, tc.want, tc.tol)
		}
	}
}

// TestHistogramQuantileExponentialScoreBuckets mimics the score
// distribution shape the detector actually produces.
func TestHistogramQuantileExponentialScoreBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("exp_score", "t", ScoreBuckets)
	rng := rand.New(rand.NewSource(13))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(rng.ExpFloat64() * 0.1)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := -0.1 * math.Log(1-q)
		got := h.Quantile(q)
		// Linear interpolation over geometric-ish buckets: allow the
		// width of the containing bucket as tolerance.
		if math.Abs(got-want) > 0.08 {
			t.Errorf("exp p%v = %v, want ≈%v", q*100, got, want)
		}
	}
	// Monotonicity across the whole range.
	prev := 0.0
	for q := 0.05; q < 1; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone: Q(%v)=%v < %v", q, cur, prev)
		}
		prev = cur
	}
}

// TestHistogramQuantileEdgeBuckets pins the boundary contracts: empty
// histogram, everything in the first bucket, everything in overflow, and
// a quantile landing in an empty middle bucket.
func TestHistogramQuantileEdgeBuckets(t *testing.T) {
	r := NewRegistry()
	empty := r.NewHistogram("edge_empty", "t", []float64{1, 2})
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	first := r.NewHistogram("edge_first", "t", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		first.Observe(0.5)
	}
	// All mass in (0,1]: p50 interpolates to 0.5, p100 to 1.
	if got := first.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("first-bucket p50 = %v, want 0.5", got)
	}
	if got := first.Quantile(1); got != 1 {
		t.Fatalf("first-bucket p100 = %v, want 1", got)
	}

	over := r.NewHistogram("edge_over", "t", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		over.Observe(100)
	}
	// Overflow clamps to the largest finite bound — the documented
	// saturation behavior, so dashboards show "≥4" rather than garbage.
	if got := over.Quantile(0.5); got != 4 {
		t.Fatalf("overflow p50 = %v, want 4", got)
	}

	gap := r.NewHistogram("edge_gap", "t", []float64{1, 2, 4})
	gap.Observe(0.5)
	gap.Observe(3) // nothing in (1,2]
	// rank 1 = cumulative count of bucket 1 = first bucket's edge.
	if got := gap.Quantile(0.5); got != 1 {
		t.Fatalf("gap p50 = %v, want 1", got)
	}
}
