package obs

import (
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens, refilled at `rate` tokens/second, one token per Allow. It backs
// log sampling on per-row paths — a misbehaving stream that would emit a
// warning per window must not flood stderr — but is generic enough for
// any "at most N/sec" gate.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // stubbed in tests
}

// NewTokenBucket returns a full bucket refilling at rate/sec up to burst.
// rate <= 0 never refills (after the initial burst drains, everything is
// denied); burst < 1 denies everything from the start.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	b := &TokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// Allow consumes one token if available and reports whether it did.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 && b.rate > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
