package obs

import (
	"strings"
	"testing"
	"time"
)

// TestTokenBucketRefill drives the bucket with a stubbed clock: burst
// drains, refill restores tokens at the configured rate, capacity clamps.
func TestTokenBucketRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(2, 3) // 2 tokens/sec, burst 3
	b.now = func() time.Time { return now }
	b.last = now
	b.tokens = b.burst

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("bucket should be empty after burst")
	}
	now = now.Add(500 * time.Millisecond) // refills 1 token
	if !b.Allow() {
		t.Fatal("token after 500ms refill denied")
	}
	if b.Allow() {
		t.Fatal("second token should not exist yet")
	}
	now = now.Add(time.Hour) // refill far past capacity: clamps to burst
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("post-clamp token %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("clamp exceeded burst capacity")
	}
}

// TestLoggerRateLimit checks the sampler contract end to end: limited
// levels drop beyond the burst and count in log_dropped_total, Error
// lines always pass, ClearRateLimit restores full logging.
func TestLoggerRateLimit(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelDebug)
	l.now = func() time.Time { return time.Unix(0, 0) }
	l.SetRateLimit(0, 2) // 2-line burst, no refill

	before := logDropped.Value()
	for i := 0; i < 5; i++ {
		l.Debug("chatty", "i", i)
	}
	l.Error("outage", "cause", "disk")

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 debug + 1 error:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[2], "level=error") {
		t.Fatalf("error line missing despite exhausted bucket:\n%s", buf.String())
	}
	if d := logDropped.Value() - before; d != 3 {
		t.Fatalf("log_dropped_total delta = %v, want 3", d)
	}

	l.ClearRateLimit()
	buf.Reset()
	l.Debug("free again")
	if !strings.Contains(buf.String(), "free again") {
		t.Fatal("ClearRateLimit did not restore logging")
	}
}
