package obs

import (
	"math"
	"sync/atomic"
)

// Sketch is a fixed-memory streaming distribution sketch over the
// positive real axis, built for anomaly scores: Observe is one atomic add
// into a geometric bin, so per-row scoring instrumentation costs nothing
// measurable and allocates nothing. Quantiles interpolate inside the
// containing bin; with sketchBins geometric bins spanning
// [sketchMin, sketchMax) a quantile estimate is off by at most one bin
// ratio (~18% relative here, typically far less away from distribution
// edges) — plenty for distribution-shift detection, where the question is
// "did the whole CDF move", not "what is the 7th decimal of p99".
//
// A Sketch is safe for concurrent Observe/Quantile/Snapshot from any
// number of goroutines. Snapshots share the fixed bin layout, so two
// sketches (or a sketch and a snapshot taken earlier) are directly
// comparable bin-by-bin — the property the score-distribution-shift alert
// is built on (drift.KSFromCounts).
type Sketch struct {
	// counts[0] is the underflow bin (v < sketchMin, including zero and
	// negatives); counts[1..sketchBins] are the geometric bins;
	// counts[sketchBins+1] is the overflow bin (v >= sketchMax).
	counts [sketchBins + 2]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

const (
	// sketchBins geometric bins between sketchMin and sketchMax. Anomaly
	// scores (reconstruction MAE on scaled features) live around 1e-3..3;
	// the range leaves three decades of headroom on each side.
	sketchBins = 128
	sketchMin  = 1e-6
	sketchMax  = 1e3
)

// sketchRatio is the per-bin geometric growth factor:
// sketchMin * sketchRatio^sketchBins == sketchMax.
var (
	sketchLogRatio = math.Log(sketchMax/sketchMin) / sketchBins
	sketchInvRatio = 1 / sketchLogRatio
)

// NewSketch returns an empty sketch.
func NewSketch() *Sketch { return &Sketch{} }

// sketchBinOf maps a value to its bin index in [0, sketchBins+1].
func sketchBinOf(v float64) int {
	if !(v >= sketchMin) { // negatives, zero, NaN: underflow
		return 0
	}
	if v >= sketchMax {
		return sketchBins + 1
	}
	b := int(math.Log(v/sketchMin)*sketchInvRatio) + 1
	if b < 1 {
		b = 1
	}
	if b > sketchBins {
		b = sketchBins
	}
	return b
}

// sketchBound returns the upper bound of bin i (1-based geometric bins).
func sketchBound(i int) float64 {
	return sketchMin * math.Exp(float64(i)*sketchLogRatio)
}

// Observe records one value: two atomic adds and a CAS, no allocation.
func (s *Sketch) Observe(v float64) {
	s.counts[sketchBinOf(v)].Add(1)
	s.total.Add(1)
	addFloat(&s.sum, v)
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.total.Load() }

// Sum returns the sum of observed values.
func (s *Sketch) Sum() float64 { return loadFloat(&s.sum) }

// Quantile estimates the q-quantile (0 < q < 1) by geometric
// interpolation within the containing bin. Underflow observations report
// as sketchMin, overflow as sketchMax. Returns 0 with no observations.
func (s *Sketch) Quantile(q float64) float64 {
	snap := s.Snapshot()
	return snap.Quantile(q)
}

// Snapshot copies the sketch's counts into an immutable snapshot. The
// copy is not atomic across bins — observations landing mid-copy may be
// split — which shifts the CDF by at most a few counts and does not
// matter at the sample sizes where a snapshot is meaningful.
func (s *Sketch) Snapshot() *SketchSnapshot {
	snap := &SketchSnapshot{}
	var total uint64
	for i := range s.counts {
		c := s.counts[i].Load()
		snap.Counts[i] = c
		total += c
	}
	snap.Total = total
	return snap
}

// SketchSnapshot is a frozen copy of a Sketch's bins: the baseline the
// score-distribution-shift alert compares live scoring against. All
// snapshots share the package-fixed bin layout.
type SketchSnapshot struct {
	Counts [sketchBins + 2]uint64
	Total  uint64
}

// Quantile estimates the q-quantile of the snapshot.
func (s *SketchSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	rank := q * float64(s.Total)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			switch i {
			case 0:
				return sketchMin
			case sketchBins + 1:
				return sketchMax
			}
			lo := sketchBound(i - 1)
			hi := sketchBound(i)
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			// Geometric interpolation matches the bin spacing.
			return lo * math.Exp(frac*math.Log(hi/lo))
		}
	}
	return sketchMax
}

// CountsSlice returns the bin counts as a slice (for KS comparison via
// drift.KSFromCounts, which wants plain slices).
func (s *SketchSnapshot) CountsSlice() []uint64 { return s.Counts[:] }
