package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestSketchQuantileUniform checks the geometric-bin estimate against the
// true quantiles of a uniform distribution: the documented relative error
// bound is one bin ratio (~18%); quantiles near the distribution's hard
// upper edge hit the worst case, mid-distribution ones do far better.
func TestSketchQuantileUniform(t *testing.T) {
	s := NewSketch()
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for i := 0; i < n; i++ {
		s.Observe(0.1 + 0.9*rng.Float64()) // uniform on [0.1, 1.0)
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.55, 0.06}, {0.9, 0.91, 0.06}, {0.95, 0.955, 0.10}, {0.99, 0.991, 0.18},
	} {
		got := s.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > tc.tol {
			t.Errorf("p%v = %v, want %v ±%.0f%% (rel err %.3f)", tc.q*100, got, tc.want, tc.tol*100, rel)
		}
	}
	// Mean from sum/count should be near 0.55 exactly (sum is not binned).
	if mean := s.Sum() / float64(s.Count()); math.Abs(mean-0.55) > 0.01 {
		t.Errorf("mean = %v, want ≈0.55", mean)
	}
}

// TestSketchQuantileExponential exercises a heavy-ish tail spanning
// several decades, which is what the geometric bins are for.
func TestSketchQuantileExponential(t *testing.T) {
	s := NewSketch()
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	for i := 0; i < n; i++ {
		s.Observe(rng.ExpFloat64() * 0.1) // mean 0.1
	}
	// True quantiles of Exp(mean 0.1): -0.1*ln(1-q).
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := -0.1 * math.Log(1-q)
		got := s.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Errorf("p%v = %v, want %v ±8%% (rel err %.3f)", q*100, got, want, rel)
		}
	}
}

// TestSketchEdges pins the out-of-range contracts: empty sketch, values
// below/at zero (underflow bin, reported as sketchMin) and values beyond
// the top of the range (overflow bin, reported as sketchMax).
func TestSketchEdges(t *testing.T) {
	s := NewSketch()
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty sketch p50 = %v, want 0", q)
	}
	for _, v := range []float64{0, -3, math.NaN(), 1e-9} {
		s.Observe(v)
	}
	if got := s.Quantile(0.5); got != sketchMin {
		t.Fatalf("underflow p50 = %v, want %v", got, sketchMin)
	}
	o := NewSketch()
	o.Observe(1e6)
	o.Observe(math.Inf(1))
	if got := o.Quantile(0.5); got != sketchMax {
		t.Fatalf("overflow p50 = %v, want %v", got, sketchMax)
	}
}

// TestSketchBinBoundaries checks that bin assignment round-trips with the
// bin bounds: a value inside bin i must yield a quantile inside that
// bin's range when it is the only observation.
func TestSketchBinBoundaries(t *testing.T) {
	for _, v := range []float64{sketchMin, 1e-3, 0.05, 0.5, 1, 10, sketchMax * 0.999} {
		s := NewSketch()
		s.Observe(v)
		got := s.Quantile(0.5)
		// One observation: the estimate must be within one bin ratio of v.
		ratio := math.Exp(sketchLogRatio)
		if got < v/ratio*0.999 || got > v*ratio*1.001 {
			t.Errorf("single obs %v: quantile %v outside bin ratio %v", v, got, ratio)
		}
	}
}

// TestSketchConcurrent hammers Observe from many goroutines (the scoring
// fan-out shape); under -race this is the data-race regression, and the
// final count proves no observation is lost.
func TestSketchConcurrent(t *testing.T) {
	s := NewSketch()
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(float64(i%100)*0.01 + 0.001)
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*per {
		t.Fatalf("count = %d, want %d", s.Count(), workers*per)
	}
	snap := s.Snapshot()
	if snap.Total != workers*per {
		t.Fatalf("snapshot total = %d, want %d", snap.Total, workers*per)
	}
}

// TestSketchObserveZeroAlloc pins the hot-path contract: Observe must not
// allocate (it sits inside per-row scoring).
func TestSketchObserveZeroAlloc(t *testing.T) {
	s := NewSketch()
	if n := testing.AllocsPerRun(1000, func() { s.Observe(0.17) }); n != 0 {
		t.Fatalf("Sketch.Observe allocates %v/op, want 0", n)
	}
}

// TestCostLedger exercises resolve-once Record and the snapshot payload.
func TestCostLedger(t *testing.T) {
	e := CostFor("ledgertest")
	e.Record(100, 2e6) // 100 rows, 2ms → 20µs/row
	e.Record(0, 1e9)   // no rows: ignored
	var nilEntry *CostEntry
	nilEntry.Record(5, 1e6) // nil-safe no-op

	var row *CostRow
	for _, r := range LedgerSnapshot() {
		if r.Model == "ledgertest" {
			row = &r
			break
		}
	}
	if row == nil {
		t.Fatal("ledgertest missing from LedgerSnapshot")
	}
	if row.Rows != 100 {
		t.Fatalf("rows = %v, want 100", row.Rows)
	}
	if math.Abs(row.NsPerRow-20000) > 1 {
		t.Fatalf("ns/row = %v, want 20000", row.NsPerRow)
	}
}

// TestCostRecordZeroAlloc pins the per-batch cost of ledger recording.
func TestCostRecordZeroAlloc(t *testing.T) {
	e := CostFor("ledgeralloc")
	if n := testing.AllocsPerRun(1000, func() { e.Record(64, 1e5) }); n != 0 {
		t.Fatalf("CostEntry.Record allocates %v/op, want 0", n)
	}
}
