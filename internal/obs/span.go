package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: StartSpan/End record stage durations into the
// span_duration_seconds histogram, keyed by the span's dotted path
// (nested spans concatenate parent.child, so a stage's time is attributed
// to where it ran, not just what it was). Spans slower than the slow
// threshold additionally land in a fixed ring buffer for post-hoc
// inspection via /debug/vars — the poor operator's trace store.

var spanDurations = Default.NewHistogramVec("span_duration_seconds",
	"Duration of traced pipeline stages, by dotted span path.", DefBuckets, "span")

type spanCtxKey struct{}

// Span is one in-flight traced stage.
type Span struct {
	name  string
	start time.Time
	done  atomic.Bool
}

// Name returns the span's full dotted path.
func (s *Span) Name() string { return s.name }

// StartSpan begins a traced stage. If ctx already carries a span, the new
// span's path is parent.child — nested stages attribute their durations to
// distinct histograms. The returned context carries the new span; pass it
// to callees that trace their own stages.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		name = parent.name + "." + name
	}
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// End records the span's duration. Safe to call more than once; only the
// first call records. Returns the measured duration.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if !s.done.CompareAndSwap(false, true) {
		return d
	}
	spanDurations.With(s.name).Observe(d.Seconds())
	recordSlowSpan(s.name, s.start, d)
	return d
}

// SlowSpan is one entry of the recent-slow-spans ring.
type SlowSpan struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

const slowRingSize = 128

var (
	slowThresholdNs atomic.Int64 // spans at or above this land in the ring
	slowMu          sync.Mutex
	slowRing        [slowRingSize]SlowSpan
	slowNext        int
	slowCount       int
)

func init() { slowThresholdNs.Store(int64(100 * time.Millisecond)) }

// SetSlowSpanThreshold sets the duration at which a span is retained in
// the slow-span ring (default 100ms). Zero retains every span; negative
// disables retention.
func SetSlowSpanThreshold(d time.Duration) { slowThresholdNs.Store(int64(d)) }

func recordSlowSpan(name string, start time.Time, d time.Duration) {
	th := slowThresholdNs.Load()
	if th < 0 || int64(d) < th {
		return
	}
	slowMu.Lock()
	slowRing[slowNext] = SlowSpan{Name: name, Start: start, Duration: d}
	slowNext = (slowNext + 1) % slowRingSize
	if slowCount < slowRingSize {
		slowCount++
	}
	slowMu.Unlock()
}

// RecentSlowSpans returns the retained slow spans, newest first.
func RecentSlowSpans() []SlowSpan {
	slowMu.Lock()
	defer slowMu.Unlock()
	out := make([]SlowSpan, 0, slowCount)
	for i := 0; i < slowCount; i++ {
		idx := (slowNext - 1 - i + slowRingSize) % slowRingSize
		out = append(out, slowRing[idx])
	}
	return out
}
