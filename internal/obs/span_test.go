package obs

import (
	"context"
	"testing"
	"time"
)

// TestNestedSpansAttribution proves nested spans record into distinct
// histograms keyed by their dotted path: the parent's duration lands in
// span_duration_seconds{span="outer"}, the child's in {span="outer.inner"},
// and neither pollutes the other.
func TestNestedSpansAttribution(t *testing.T) {
	outerBefore := spanDurations.With("test_outer").Count()
	innerBefore := spanDurations.With("test_outer.test_inner").Count()
	bareInnerBefore := spanDurations.With("test_inner").Count()

	ctx, outer := StartSpan(context.Background(), "test_outer")
	childCtx, inner := StartSpan(ctx, "test_inner")
	time.Sleep(2 * time.Millisecond)
	if got := inner.End(); got < 2*time.Millisecond {
		t.Fatalf("inner duration %v too short", got)
	}
	// A grandchild started from the child's context nests twice.
	_, grand := StartSpan(childCtx, "leaf")
	grand.End()
	outerDur := outer.End()

	if d := spanDurations.With("test_outer").Count() - outerBefore; d != 1 {
		t.Fatalf("outer histogram count delta = %d, want 1", d)
	}
	if d := spanDurations.With("test_outer.test_inner").Count() - innerBefore; d != 1 {
		t.Fatalf("nested histogram count delta = %d, want 1", d)
	}
	if d := spanDurations.With("test_inner").Count() - bareInnerBefore; d != 0 {
		t.Fatalf("bare inner name must not be touched by a nested span (delta %d)", d)
	}
	if grand.Name() != "test_outer.test_inner.leaf" {
		t.Fatalf("grandchild path = %q", grand.Name())
	}
	// The outer span covers the inner's sleep.
	if outerDur < 2*time.Millisecond {
		t.Fatalf("outer duration %v should include nested work", outerDur)
	}
	// Sum attributed to the nested histogram reflects the sleep.
	if s := spanDurations.With("test_outer.test_inner").Sum(); s < 0.002 {
		t.Fatalf("nested histogram sum %v, want >= 2ms", s)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	before := spanDurations.With("test_idem").Count()
	_, s := StartSpan(context.Background(), "test_idem")
	s.End()
	s.End()
	if d := spanDurations.With("test_idem").Count() - before; d != 1 {
		t.Fatalf("double End recorded %d times, want 1", d)
	}
}

func TestSlowSpanRing(t *testing.T) {
	SetSlowSpanThreshold(0) // retain everything
	defer SetSlowSpanThreshold(100 * time.Millisecond)

	for i := 0; i < 3; i++ {
		_, s := StartSpan(context.Background(), "test_slow")
		s.End()
	}
	spans := RecentSlowSpans()
	if len(spans) < 3 {
		t.Fatalf("ring holds %d spans, want >= 3", len(spans))
	}
	// Newest first.
	if spans[0].Start.Before(spans[1].Start) {
		t.Fatalf("ring not newest-first: %v then %v", spans[0].Start, spans[1].Start)
	}
	found := 0
	for _, sp := range spans {
		if sp.Name == "test_slow" {
			found++
		}
	}
	if found < 3 {
		t.Fatalf("found %d test_slow spans, want 3", found)
	}
}
