package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Agg names a windowed aggregation. The closed set keeps /api/timeseries
// and alert rules honest: anything else is a query error, not a silent
// zero.
type Agg string

const (
	AggRaw      Agg = "raw"       // points as stored
	AggRate     Agg = "rate"      // counter increase per second, reset-tolerant
	AggDelta    Agg = "delta"     // last - first over the window (gauges)
	AggAvg      Agg = "avg"       // mean of points in the window
	AggMin      Agg = "min"       // minimum point in the window
	AggMax      Agg = "max"       // maximum point in the window
	AggQuantile Agg = "quantile"  // histogram quantile over window bucket increases
	AggFracOver Agg = "frac_over" // fraction of window observations above Bound
)

// ParseAgg validates an aggregation name from a query string.
func ParseAgg(s string) (Agg, error) {
	switch a := Agg(s); a {
	case "", AggRaw:
		return AggRaw, nil
	case AggRate, AggDelta, AggAvg, AggMin, AggMax, AggQuantile, AggFracOver:
		return a, nil
	}
	return "", fmt.Errorf("tsdb: unknown agg %q", s)
}

// AggQuery is a windowed aggregation request. For AggQuantile and
// AggFracOver, Name is the histogram family name (the store appends
// _bucket internally); Q is the quantile in (0,1); Bound is the threshold
// value for frac_over, snapped up to the nearest bucket bound.
type AggQuery struct {
	Name     string
	Matchers map[string]string
	Agg      Agg
	Q        float64
	Bound    float64
	Window   time.Duration
}

// windowSlice returns the points of sr in (toMs-windowMs, toMs]. With
// includeBase, the one point immediately before the window is prepended —
// the base a difference aggregation (rate, delta, bucket increase) needs
// so a single in-window sample still yields a change; point-set
// aggregations (avg, min, max) must not see it.
func (sr *series) windowSlice(toMs, windowMs int64, includeBase bool) []Point {
	fromMs := toMs - windowMs
	var out []Point
	var base *Point
	for i := 0; i < sr.count; i++ {
		p := sr.at(i)
		if p.T > toMs {
			break
		}
		if p.T <= fromMs {
			q := p
			base = &q
			continue
		}
		out = append(out, p)
	}
	if includeBase && base != nil {
		out = append([]Point{*base}, out...)
	}
	return out
}

// increase is the reset-tolerant counter increase over pts: the sum of
// positive adjacent deltas (a restart shows as a negative step and is
// skipped rather than poisoning the rate).
func increase(pts []Point) float64 {
	var inc float64
	for i := 1; i < len(pts); i++ {
		if d := pts[i].V - pts[i-1].V; d > 0 {
			inc += d
		}
	}
	return inc
}

// scalarAgg evaluates a non-histogram aggregation over the window ending
// at toMs. ok is false when the window holds too few points.
func scalarAgg(agg Agg, pts []Point, windowMs int64) (float64, bool) {
	switch agg {
	case AggRate:
		if len(pts) < 2 {
			return 0, false
		}
		elapsed := float64(pts[len(pts)-1].T-pts[0].T) / 1000
		if elapsed <= 0 {
			return 0, false
		}
		return increase(pts) / elapsed, true
	case AggDelta:
		if len(pts) < 2 {
			return 0, false
		}
		return pts[len(pts)-1].V - pts[0].V, true
	case AggAvg, AggMin, AggMax:
		if len(pts) == 0 {
			return 0, false
		}
		v := pts[0].V
		sum := 0.0
		for _, p := range pts {
			sum += p.V
			switch agg {
			case AggMin:
				if p.V < v {
					v = p.V
				}
			case AggMax:
				if p.V > v {
					v = p.V
				}
			}
		}
		if agg == AggAvg {
			return sum / float64(len(pts)), true
		}
		return v, true
	}
	return 0, false
}

// bucketGroup is the histogram rebuilt from _bucket series sharing all
// labels except le: ascending upper bounds with their series.
type bucketGroup struct {
	labels map[string]string
	uppers []float64
	series []*series
}

// bucketGroupsLocked collects and groups the _bucket series of a
// histogram family. Caller holds s.mu.
func (s *Store) bucketGroupsLocked(name string, matchers map[string]string) []*bucketGroup {
	groups := map[string]*bucketGroup{}
	for _, sr := range s.series {
		if sr.name != name+"_bucket" || !sr.matches(matchers) {
			continue
		}
		le := ""
		var keyParts []string
		for i, ln := range sr.labelNames {
			if ln == "le" {
				le = sr.labelValues[i]
				continue
			}
			keyParts = append(keyParts, ln+"="+sr.labelValues[i])
		}
		if le == "" {
			continue
		}
		upper := math.Inf(1)
		if le != "+Inf" {
			v, err := parseFloat(le)
			if err != nil {
				continue
			}
			upper = v
		}
		key := strings.Join(keyParts, "\x1f")
		g, ok := groups[key]
		if !ok {
			lm := sr.labelMap()
			delete(lm, "le")
			g = &bucketGroup{labels: lm}
			groups[key] = g
		}
		g.uppers = append(g.uppers, upper)
		g.series = append(g.series, sr)
	}
	out := make([]*bucketGroup, 0, len(groups))
	for _, g := range groups {
		sort.Sort(byUpper{g})
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i].labels) < fmt.Sprint(out[j].labels)
	})
	return out
}

type byUpper struct{ g *bucketGroup }

func (b byUpper) Len() int           { return len(b.g.uppers) }
func (b byUpper) Less(i, j int) bool { return b.g.uppers[i] < b.g.uppers[j] }
func (b byUpper) Swap(i, j int) {
	b.g.uppers[i], b.g.uppers[j] = b.g.uppers[j], b.g.uppers[i]
	b.g.series[i], b.g.series[j] = b.g.series[j], b.g.series[i]
}

// increases returns each bucket's reset-tolerant increase over the window
// ending at toMs. The counts are cumulative per scrape, so the increases
// are cumulative too (up to reset noise, which is clamped monotone).
func (g *bucketGroup) increases(toMs, windowMs int64) []float64 {
	inc := make([]float64, len(g.series))
	for i, sr := range g.series {
		inc[i] = increase(sr.windowSlice(toMs, windowMs, true))
		if i > 0 && inc[i] < inc[i-1] {
			inc[i] = inc[i-1]
		}
	}
	return inc
}

// quantileOf interpolates the q-quantile from cumulative bucket increases,
// the same arithmetic as obs.Histogram.Quantile: linear within the
// containing bucket, overflow clamps to the largest finite bound.
func quantileOf(uppers []float64, cum []float64, q float64) (float64, bool) {
	if len(cum) == 0 {
		return 0, false
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0, false
	}
	rank := q * total
	for i, c := range cum {
		if c >= rank {
			if math.IsInf(uppers[i], 1) {
				// Overflow: clamp to the largest finite bound.
				if i == 0 {
					return 0, false
				}
				return uppers[i-1], true
			}
			lo, prev := 0.0, 0.0
			if i > 0 {
				lo = uppers[i-1]
				prev = cum[i-1]
			}
			if math.IsInf(lo, 1) {
				return 0, false
			}
			inBucket := c - prev
			if inBucket <= 0 {
				return uppers[i], true
			}
			return lo + (uppers[i]-lo)*(rank-prev)/inBucket, true
		}
	}
	return uppers[len(uppers)-1], true
}

// fracOver returns the fraction of window observations strictly above the
// smallest bucket bound ≥ bound. Snapping to a bucket edge keeps the
// answer exact rather than interpolated.
func fracOver(uppers []float64, cum []float64, bound float64) (float64, bool) {
	if len(cum) == 0 {
		return 0, false
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0, false
	}
	for i, u := range uppers {
		if u >= bound {
			return (total - cum[i]) / total, true
		}
	}
	return 0, true
}

// EvalAgg evaluates one aggregation over the window ending at `at`,
// combining multiple matching series (sum for rate/delta, pooled points
// for avg/min/max, merged bucket increases for quantile/frac_over). ok is
// false when no series has enough data — callers treat that as "rule not
// evaluable", never as zero.
func (s *Store) EvalAgg(q AggQuery, at time.Time) (float64, bool) {
	toMs := at.UnixMilli()
	windowMs := q.Window.Milliseconds()
	if windowMs <= 0 {
		return 0, false
	}

	s.mu.RLock()
	defer s.mu.RUnlock()

	switch q.Agg {
	case AggQuantile, AggFracOver:
		groups := s.bucketGroupsLocked(q.Name, q.Matchers)
		var uppers []float64
		var cum []float64
		for _, g := range groups {
			inc := g.increases(toMs, windowMs)
			if uppers == nil {
				uppers = g.uppers
				cum = inc
				continue
			}
			if len(inc) != len(cum) {
				continue // mismatched layouts never merge
			}
			for i := range cum {
				cum[i] += inc[i]
			}
		}
		if q.Agg == AggQuantile {
			return quantileOf(uppers, cum, q.Q)
		}
		return fracOver(uppers, cum, q.Bound)
	case AggRate, AggDelta:
		var sum float64
		any := false
		for _, sr := range s.series {
			if sr.name != q.Name || !sr.matches(q.Matchers) {
				continue
			}
			if v, ok := scalarAgg(q.Agg, sr.windowSlice(toMs, windowMs, true), windowMs); ok {
				sum += v
				any = true
			}
		}
		return sum, any
	case AggAvg, AggMin, AggMax:
		var pool []Point
		for _, sr := range s.series {
			if sr.name != q.Name || !sr.matches(q.Matchers) {
				continue
			}
			pool = append(pool, sr.windowSlice(toMs, windowMs, false)...)
		}
		return scalarAgg(q.Agg, pool, windowMs)
	}
	return 0, false
}

// QueryAgg returns derived series: the aggregation evaluated over a
// trailing window at each stored sample timestamp in [from, to] — what
// the dashboard sparklines draw. AggRaw falls through to Query.
func (s *Store) QueryAgg(q AggQuery, from, to time.Time) []Result {
	if q.Agg == AggRaw || q.Agg == "" {
		return s.Query(q.Name, q.Matchers, from, to)
	}
	var fromMs int64
	if !from.IsZero() {
		fromMs = from.UnixMilli()
	}
	toMs := int64(1<<63 - 1)
	if !to.IsZero() {
		toMs = to.UnixMilli()
	}
	windowMs := q.Window.Milliseconds()
	if windowMs <= 0 {
		return nil
	}

	s.mu.RLock()
	defer s.mu.RUnlock()

	switch q.Agg {
	case AggQuantile, AggFracOver:
		var out []Result
		for _, g := range s.bucketGroupsLocked(q.Name, q.Matchers) {
			if len(g.series) == 0 {
				continue
			}
			ref := g.series[len(g.series)-1] // +Inf series carries every scrape
			res := Result{Name: q.Name + "_" + string(q.Agg), Labels: g.labels}
			for i := 0; i < ref.count; i++ {
				t := ref.at(i).T
				if t < fromMs || t > toMs {
					continue
				}
				inc := g.increases(t, windowMs)
				var v float64
				var ok bool
				if q.Agg == AggQuantile {
					v, ok = quantileOf(g.uppers, inc, q.Q)
				} else {
					v, ok = fracOver(g.uppers, inc, q.Bound)
				}
				if ok {
					res.Points = append(res.Points, Point{T: t, V: v})
				}
			}
			out = append(out, res)
		}
		return out
	default:
		var out []Result
		for _, sr := range s.series {
			if sr.name != q.Name || !sr.matches(q.Matchers) {
				continue
			}
			res := Result{Name: q.Name + "_" + string(q.Agg), Labels: sr.labelMap()}
			for i := 0; i < sr.count; i++ {
				t := sr.at(i).T
				if t < fromMs || t > toMs {
					continue
				}
				if v, ok := scalarAgg(q.Agg, sr.windowSlice(t, windowMs, q.Agg == AggRate || q.Agg == AggDelta), windowMs); ok {
					res.Points = append(res.Points, Point{T: t, V: v})
				}
			}
			out = append(out, res)
		}
		sort.Slice(out, func(i, j int) bool {
			return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
		})
		return out
	}
}

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }
