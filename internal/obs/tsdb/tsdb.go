// Package tsdb is an in-process ring-buffer time-series store: it scrapes
// the obs registry on a fixed interval, keeps a bounded window of points
// per series, and answers the windowed queries (rate, delta, quantile-
// over-time) the alert engine and the dashboard are built on.
//
// Prodigy already *exposes* instantaneous metrics on /metrics; what it
// could not answer before this package is "is the detector healthy over
// time" — a question that needs history. Running a real TSDB next to the
// detector is not an option on an HPC management node, so this is the
// smallest store that supports the alert rules: fixed retention, fixed
// memory, no persistence, no dependencies.
//
// Determinism: every time source is injected (Config.Now), and ScrapeOnce
// is callable directly, so tests and the e2e demo drive the store with a
// fake clock and never sleep.
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"prodigy/internal/obs"
)

// Config sizes the store and injects its clock.
type Config struct {
	// Interval between scrapes for the background loop (Start). Also the
	// nominal sample spacing assumed by rate queries. Default 5s.
	Interval time.Duration
	// Retention is the number of points kept per series. Default 720
	// (one hour at 5s spacing). Memory is bounded by
	// retention × live series × 16 bytes.
	Retention int
	// Now is the clock; defaults to time.Now. Tests inject a fake.
	Now func() time.Time
	// AfterScrape, when set, runs after every scrape (including manual
	// ScrapeOnce) with the scrape timestamp — the alert engine's
	// evaluation hook, so alerts see each new point exactly once.
	AfterScrape func(t time.Time)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Retention <= 0 {
		c.Retention = 720
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Point is one sample: millisecond unix timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// series is one named label-set with a ring of points.
type series struct {
	name        string
	labelNames  []string
	labelValues []string
	points      []Point // ring, capacity = Retention
	head        int     // next write position
	count       int     // valid points, ≤ len(points)
}

// at returns the i-th oldest valid point (0 ≤ i < count).
func (s *series) at(i int) Point {
	start := s.head - s.count
	if start < 0 {
		start += len(s.points)
	}
	return s.points[(start+i)%len(s.points)]
}

func (s *series) push(p Point) {
	if len(s.points) == 0 {
		return
	}
	s.points[s.head] = p
	s.head = (s.head + 1) % len(s.points)
	if s.count < len(s.points) {
		s.count++
	}
}

// Store scrapes a registry into bounded per-series rings.
type Store struct {
	cfg Config
	reg *obs.Registry

	mu     sync.RWMutex
	series map[string]*series

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Self-metrics: the store reports its own health into the registry it
// scrapes, so scrape cadence and series growth are visible on /metrics
// and (one scrape later) in the store itself.
var (
	tsdbScrapes = obs.Default.NewCounter("tsdb_scrapes_total",
		"Registry scrapes performed by the in-process tsdb.")
	tsdbSamples = obs.Default.NewCounter("tsdb_samples_appended_total",
		"Samples appended across all tsdb series.")
	tsdbSeries = obs.Default.NewGauge("tsdb_series",
		"Live series tracked by the in-process tsdb.")
)

// New returns a store scraping reg (nil means obs.Default).
func New(reg *obs.Registry, cfg Config) *Store {
	if reg == nil {
		reg = obs.Default
	}
	return &Store{
		cfg:    cfg.withDefaults(),
		reg:    reg,
		series: make(map[string]*series),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Interval returns the configured scrape interval.
func (s *Store) Interval() time.Duration { return s.cfg.Interval }

// Now returns the store's clock reading. Query surfaces built on the
// store (the /api/timeseries handler) anchor "now" here so an injected
// test clock governs the whole pipeline, not just scraping.
func (s *Store) Now() time.Time { return s.cfg.Now() }

// seriesID keys a series by name + label values; label values come from
// the registry's own deterministic enumeration so the key is stable.
func seriesID(name string, values []string) string {
	if len(values) == 0 {
		return name
	}
	return name + "\x1e" + strings.Join(values, "\x1f")
}

// ScrapeOnce samples every registry series at the injected clock's
// current time, then runs AfterScrape. Safe for concurrent use with
// queries; scrapes themselves must not run concurrently (the background
// loop serializes them, tests call it from one goroutine).
func (s *Store) ScrapeOnce() {
	now := s.cfg.Now()
	ts := now.UnixMilli()
	var appended int
	s.mu.Lock()
	s.reg.Collect(func(p obs.SamplePoint) {
		id := seriesID(p.Name, p.Values)
		sr, ok := s.series[id]
		if !ok {
			sr = &series{
				name:        p.Name,
				labelNames:  append([]string(nil), p.Labels...),
				labelValues: append([]string(nil), p.Values...),
				points:      make([]Point, s.cfg.Retention),
			}
			s.series[id] = sr
		}
		sr.push(Point{T: ts, V: p.Value})
		appended++
	})
	nSeries := len(s.series)
	s.mu.Unlock()

	tsdbScrapes.Inc()
	tsdbSamples.Add(float64(appended))
	tsdbSeries.Set(float64(nSeries))
	if s.cfg.AfterScrape != nil {
		s.cfg.AfterScrape(now)
	}
}

// Start launches the background scrape loop. Stop terminates it.
func (s *Store) Start() {
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.ScrapeOnce()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// multiple times; a Store that was never Started must not be Stopped.
func (s *Store) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// SeriesMeta describes one live series (for discovery endpoints).
type SeriesMeta struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points int               `json:"points"`
}

// Series lists every live series sorted by name then labels.
func (s *Store) Series() []SeriesMeta {
	s.mu.RLock()
	out := make([]SeriesMeta, 0, len(s.series))
	for _, sr := range s.series {
		m := SeriesMeta{Name: sr.name, Points: sr.count}
		if len(sr.labelNames) > 0 {
			m.Labels = make(map[string]string, len(sr.labelNames))
			for i, ln := range sr.labelNames {
				m.Labels[ln] = sr.labelValues[i]
			}
		}
		out = append(out, m)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}

// matches reports whether the series satisfies every matcher (exact
// label-value equality; a matcher on an absent label fails).
func (sr *series) matches(matchers map[string]string) bool {
	for k, want := range matchers {
		found := false
		for i, ln := range sr.labelNames {
			if ln == k {
				found = sr.labelValues[i] == want
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Result is one series' worth of query output.
type Result struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

func (sr *series) labelMap() map[string]string {
	if len(sr.labelNames) == 0 {
		return nil
	}
	m := make(map[string]string, len(sr.labelNames))
	for i, ln := range sr.labelNames {
		m[ln] = sr.labelValues[i]
	}
	return m
}

// Query returns the raw points of every series named name that satisfies
// the matchers, restricted to timestamps in [from, to] (zero times mean
// unbounded). Results are sorted by label values.
func (s *Store) Query(name string, matchers map[string]string, from, to time.Time) []Result {
	var fromMs, toMs int64
	if !from.IsZero() {
		fromMs = from.UnixMilli()
	}
	toMs = int64(1<<63 - 1)
	if !to.IsZero() {
		toMs = to.UnixMilli()
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Result
	for _, sr := range s.series {
		if sr.name != name || !sr.matches(matchers) {
			continue
		}
		res := Result{Name: sr.name, Labels: sr.labelMap()}
		for i := 0; i < sr.count; i++ {
			p := sr.at(i)
			if p.T >= fromMs && p.T <= toMs {
				res.Points = append(res.Points, p)
			}
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		return fmt.Sprint(out[i].Labels) < fmt.Sprint(out[j].Labels)
	})
	return out
}
