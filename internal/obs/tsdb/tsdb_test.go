package tsdb

import (
	"math"
	"sync"
	"testing"
	"time"

	"prodigy/internal/obs"
)

// fakeClock steps deterministically; every test drives scrapes by hand so
// nothing here sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testStore(t *testing.T, retention int) (*Store, *obs.Registry, *fakeClock) {
	t.Helper()
	reg := obs.NewRegistry()
	clk := newFakeClock()
	st := New(reg, Config{Interval: time.Second, Retention: retention, Now: clk.Now})
	return st, reg, clk
}

func TestScrapeAndRawQuery(t *testing.T) {
	st, reg, clk := testStore(t, 16)
	c := reg.NewCounterVec("reqs_total", "t", "path")
	c.With("/a").Add(1)

	st.ScrapeOnce()
	clk.Advance(time.Second)
	c.With("/a").Add(2)
	c.With("/b").Inc()
	st.ScrapeOnce()

	res := st.Query("reqs_total", map[string]string{"path": "/a"}, time.Time{}, time.Time{})
	if len(res) != 1 {
		t.Fatalf("got %d series, want 1: %+v", len(res), res)
	}
	pts := res[0].Points
	if len(pts) != 2 || pts[0].V != 1 || pts[1].V != 3 {
		t.Fatalf("points = %+v, want [1 3]", pts)
	}
	if pts[1].T-pts[0].T != 1000 {
		t.Fatalf("timestamps %d,%d not 1s apart", pts[0].T, pts[1].T)
	}
	// /b appeared at the second scrape only.
	if res := st.Query("reqs_total", map[string]string{"path": "/b"}, time.Time{}, time.Time{}); len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("late series /b = %+v", res)
	}
}

func TestRetentionRing(t *testing.T) {
	st, reg, clk := testStore(t, 4)
	g := reg.NewGauge("depth", "t")
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		st.ScrapeOnce()
		clk.Advance(time.Second)
	}
	res := st.Query("depth", nil, time.Time{}, time.Time{})
	if len(res) != 1 || len(res[0].Points) != 4 {
		t.Fatalf("retention violated: %+v", res)
	}
	for i, p := range res[0].Points {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("ring point %d = %v, want %v (oldest evicted first)", i, p.V, want)
		}
	}
}

func TestRateResetTolerant(t *testing.T) {
	st, reg, clk := testStore(t, 32)
	c := reg.NewCounter("work_total", "t")
	// 5 scrapes at 1/s increase, then a counter reset, then 2/s.
	for i := 0; i < 5; i++ {
		c.Add(1)
		st.ScrapeOnce()
		clk.Advance(time.Second)
	}
	// Simulate restart: new registry value would drop to 0. The obs
	// Counter can't go down, so fake it with a fresh store series by
	// using a gauge-backed counter-like series instead: easiest honest
	// reset is to scrape a second registry into the same store — not
	// supported — so instead verify the math on a monotone counter and
	// separately unit-test increase() with a reset below.
	v, ok := st.EvalAgg(AggQuery{Name: "work_total", Agg: AggRate, Window: 10 * time.Second}, clk.Now())
	if !ok || math.Abs(v-1.0) > 0.01 {
		t.Fatalf("rate = %v ok=%v, want ≈1.0", v, ok)
	}
}

func TestIncreaseSkipsResets(t *testing.T) {
	pts := []Point{{0, 10}, {1000, 12}, {2000, 3}, {3000, 6}}
	if inc := increase(pts); inc != 5 {
		t.Fatalf("increase with reset = %v, want 5 (2 before + 3 after)", inc)
	}
}

func TestDeltaAvgMinMax(t *testing.T) {
	st, reg, clk := testStore(t, 32)
	g := reg.NewGauge("lag", "t")
	for _, v := range []float64{5, 3, 9, 7} {
		g.Set(v)
		st.ScrapeOnce()
		clk.Advance(time.Second)
	}
	at := clk.Now()
	w := 10 * time.Second
	if v, ok := st.EvalAgg(AggQuery{Name: "lag", Agg: AggDelta, Window: w}, at); !ok || v != 2 {
		t.Fatalf("delta = %v ok=%v, want 2", v, ok)
	}
	if v, ok := st.EvalAgg(AggQuery{Name: "lag", Agg: AggAvg, Window: w}, at); !ok || v != 6 {
		t.Fatalf("avg = %v ok=%v, want 6", v, ok)
	}
	if v, ok := st.EvalAgg(AggQuery{Name: "lag", Agg: AggMin, Window: w}, at); !ok || v != 3 {
		t.Fatalf("min = %v ok=%v, want 3", v, ok)
	}
	if v, ok := st.EvalAgg(AggQuery{Name: "lag", Agg: AggMax, Window: w}, at); !ok || v != 9 {
		t.Fatalf("max = %v ok=%v, want 9", v, ok)
	}
}

func TestQuantileOverTime(t *testing.T) {
	st, reg, clk := testStore(t, 32)
	h := reg.NewHistogram("lat_seconds", "t", []float64{0.1, 0.2, 0.4})
	st.ScrapeOnce() // baseline scrape before any observations
	clk.Advance(time.Second)
	// 100 observations uniform-ish: 50 in (0,0.1], 30 in (0.1,0.2], 20 in (0.2,0.4].
	for i := 0; i < 50; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 30; i++ {
		h.Observe(0.15)
	}
	for i := 0; i < 20; i++ {
		h.Observe(0.3)
	}
	st.ScrapeOnce()
	v, ok := st.EvalAgg(AggQuery{Name: "lat_seconds", Agg: AggQuantile, Q: 0.5, Window: 10 * time.Second}, clk.Now())
	if !ok {
		t.Fatal("quantile not evaluable")
	}
	// rank 50 = edge of first bucket: exactly 0.1.
	if math.Abs(v-0.1) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.1", v)
	}
	v, ok = st.EvalAgg(AggQuery{Name: "lat_seconds", Agg: AggQuantile, Q: 0.9, Window: 10 * time.Second}, clk.Now())
	// rank 90 in (0.2,0.4]: 0.2 + 0.2*(90-80)/20 = 0.3.
	if !ok || math.Abs(v-0.3) > 1e-9 {
		t.Fatalf("p90 = %v ok=%v, want 0.3", v, ok)
	}

	// frac_over 0.2: 20 of 100 observations above → 0.2.
	v, ok = st.EvalAgg(AggQuery{Name: "lat_seconds", Agg: AggFracOver, Bound: 0.2, Window: 10 * time.Second}, clk.Now())
	if !ok || math.Abs(v-0.2) > 1e-9 {
		t.Fatalf("frac_over(0.2) = %v ok=%v, want 0.2", v, ok)
	}
}

func TestQuantileWindowExcludesOldObservations(t *testing.T) {
	st, reg, clk := testStore(t, 64)
	h := reg.NewHistogram("lat2_seconds", "t", []float64{0.1, 1})
	// Old slow observations...
	for i := 0; i < 100; i++ {
		h.Observe(0.9)
	}
	st.ScrapeOnce()
	clk.Advance(time.Minute)
	st.ScrapeOnce() // base point inside lookback chain
	clk.Advance(time.Second)
	// ...then fast ones only.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	st.ScrapeOnce()
	// 5s window covers only the fast batch: p90 must interpolate inside
	// (0, 0.1], untouched by the old 0.9s mass.
	v, ok := st.EvalAgg(AggQuery{Name: "lat2_seconds", Agg: AggQuantile, Q: 0.9, Window: 5 * time.Second}, clk.Now())
	if !ok || v > 0.1+1e-9 {
		t.Fatalf("windowed p90 = %v ok=%v, want ≤0.1", v, ok)
	}
}

func TestQueryAggDerivedSeries(t *testing.T) {
	st, reg, clk := testStore(t, 32)
	c := reg.NewCounter("ticks_total", "t")
	start := clk.Now()
	for i := 0; i < 6; i++ {
		c.Add(2) // steady 2/s
		st.ScrapeOnce()
		clk.Advance(time.Second)
	}
	res := st.QueryAgg(AggQuery{Name: "ticks_total", Agg: AggRate, Window: 3 * time.Second}, start, clk.Now())
	if len(res) != 1 {
		t.Fatalf("derived series count = %d", len(res))
	}
	if res[0].Name != "ticks_total_rate" {
		t.Fatalf("derived name = %q", res[0].Name)
	}
	if len(res[0].Points) == 0 {
		t.Fatal("no derived points")
	}
	last := res[0].Points[len(res[0].Points)-1]
	if math.Abs(last.V-2.0) > 0.01 {
		t.Fatalf("steady rate = %v, want 2.0", last.V)
	}
}

func TestEvalAggInsufficientData(t *testing.T) {
	st, reg, clk := testStore(t, 8)
	reg.NewCounter("lonely_total", "t").Inc()
	st.ScrapeOnce()
	// One point: rate/delta not evaluable; absent series not evaluable.
	if _, ok := st.EvalAgg(AggQuery{Name: "lonely_total", Agg: AggRate, Window: 10 * time.Second}, clk.Now()); ok {
		t.Fatal("rate from one point should not be evaluable")
	}
	if _, ok := st.EvalAgg(AggQuery{Name: "missing_total", Agg: AggRate, Window: 10 * time.Second}, clk.Now()); ok {
		t.Fatal("absent series should not be evaluable")
	}
	if _, ok := st.EvalAgg(AggQuery{Name: "lonely_total", Agg: AggAvg, Window: 0}, clk.Now()); ok {
		t.Fatal("zero window should not be evaluable")
	}
}

func TestParseAgg(t *testing.T) {
	for _, good := range []string{"", "raw", "rate", "delta", "avg", "min", "max", "quantile", "frac_over"} {
		if _, err := ParseAgg(good); err != nil {
			t.Errorf("ParseAgg(%q) = %v", good, err)
		}
	}
	if _, err := ParseAgg("stddev"); err == nil {
		t.Error("ParseAgg should reject unknown aggregations")
	}
}

// TestConcurrentScrapeQuery hammers scrapes, raw queries, windowed
// aggregations and series listing from many goroutines; under -race this
// is the data-race regression for the store.
func TestConcurrentScrapeQuery(t *testing.T) {
	st, reg, clk := testStore(t, 64)
	c := reg.NewCounterVec("conc_total", "t", "k")
	h := reg.NewHistogram("conc_seconds", "t", []float64{0.1, 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // scrape loop (serialized: one goroutine)
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.With("a").Inc()
			h.Observe(0.05)
			st.ScrapeOnce()
			clk.Advance(100 * time.Millisecond)
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Query("conc_total", map[string]string{"k": "a"}, time.Time{}, time.Time{})
				st.EvalAgg(AggQuery{Name: "conc_total", Agg: AggRate, Window: time.Second}, clk.Now())
				st.EvalAgg(AggQuery{Name: "conc_seconds", Agg: AggQuantile, Q: 0.9, Window: time.Second}, clk.Now())
				st.Series()
			}
		}()
	}
	wg.Wait()
	if got := st.Query("conc_total", nil, time.Time{}, time.Time{}); len(got) != 1 || len(got[0].Points) == 0 {
		t.Fatalf("post-hammer query = %+v", got)
	}
}

// TestStartStop exercises the background loop against the real ticker
// (the only test that touches wall time, bounded by the interval).
func TestStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.NewCounter("bg_total", "t").Inc()
	st := New(reg, Config{Interval: 5 * time.Millisecond, Retention: 8})
	st.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if res := st.Query("bg_total", nil, time.Time{}, time.Time{}); len(res) == 1 && len(res[0].Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background scrape never ran")
		}
		time.Sleep(time.Millisecond)
	}
	st.Stop()
	st.Stop() // idempotent
}

// TestAfterScrapeHook pins the alert engine's contract: the hook runs
// once per scrape with the scrape's timestamp.
func TestAfterScrapeHook(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newFakeClock()
	var got []time.Time
	st := New(reg, Config{Interval: time.Second, Retention: 8, Now: clk.Now,
		AfterScrape: func(ts time.Time) { got = append(got, ts) }})
	st.ScrapeOnce()
	clk.Advance(time.Second)
	st.ScrapeOnce()
	if len(got) != 2 || !got[1].Equal(got[0].Add(time.Second)) {
		t.Fatalf("AfterScrape timestamps = %v", got)
	}
}
