package online_test

import (
	"sync"
	"testing"

	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/online"
)

// rowsSink records a job's row stream so a test can replay it.
type rowsSink struct{ rows []ldms.Row }

func (s *rowsSink) Ingest(r ldms.Row) { s.rows = append(s.rows, r) }

// TestConcurrentIngest replays one job's row stream into the detector from
// many goroutines at once — the LDMS aggregator contract — while the same
// model is also being scored directly. Under -race this covers both the
// buffer-map lock and the stateless model path that scoring shares with
// the HTTP serving layer.
func TestConcurrentIngest(t *testing.T) {
	p, ocfg, sys := trainWindowModel(t, 43)

	job, err := sys.Submit("lammps", 4, 150, 78)
	if err != nil {
		t.Fatal(err)
	}
	leak := hpas.Memleak{SizeMB: 10, Period: 0.05}
	for _, n := range job.Nodes[:2] {
		job.Injectors[n] = leak
	}
	sink := &rowsSink{}
	sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.005, Seed: 78}, sink)
	if len(sink.rows) == 0 {
		t.Fatal("no rows collected")
	}

	var mu sync.Mutex
	var events []online.Event
	det, err := online.NewDetector(ocfg, p, func(ev online.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Shard rows round-robin over ≥16 ingest goroutines. Out-of-order
	// arrival within a node is allowed by the watermark design; the test
	// asserts race-freedom and sane events, not exact window contents.
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := g; i < len(sink.rows); i += goroutines {
				det.Ingest(sink.rows[i])
			}
		}()
	}
	wg.Wait()
	det.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no window events emitted")
	}
	for _, ev := range events {
		if ev.JobID != job.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		if ev.Score < 0 {
			t.Fatalf("negative score: %+v", ev)
		}
		if ev.WindowEnd-ev.WindowStart != ocfg.Window {
			t.Fatalf("window size wrong: %+v", ev)
		}
	}
}
