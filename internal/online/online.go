// Package online adds streaming anomaly detection on top of Prodigy: the
// operational-data-analytics direction of §2.2 ("real-time system
// insights") taken to its conclusion. Instead of waiting for a job to
// finish, a Detector consumes the LDMS row stream directly (it implements
// ldms.Sink, so it can sit next to — or instead of — the DSOS store in the
// aggregation fan-in), maintains a sliding window per (job, component),
// and emits a prediction event every stride seconds.
//
// Window-level feature vectors are distributed differently from whole-run
// vectors (sums scale with length, trends shorten), so the model must be
// trained on windows too: BuildWindowDataset slices stored telemetry into
// the same windows the Detector will see.
package online

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/ldms"
	"prodigy/internal/mat"
	"prodigy/internal/obs"
	"prodigy/internal/pipeline"
	"prodigy/internal/timeseries"
)

// Streaming telemetry (DESIGN.md §8): ingestion lag is measured on the
// stream's own clock (row timestamps vs the per-stream watermark), so it
// reports how out-of-order the aggregation fan-in delivers rows; buffer
// gauges expose window-assembly depth; the dropped-window counter makes
// silently skipped predictions (sparse or schema-mismatched windows)
// visible instead of indistinguishable from healthy silence.
var (
	ingestLag = obs.Default.NewHistogram("online_ingest_lag_seconds",
		"How far behind its stream's watermark each ingested row arrives (stream-clock seconds).", obs.LagBuckets)
	ingestRows = obs.Default.NewCounter("online_ingest_rows_total",
		"Rows ingested by the streaming detector.")
	bufferRows = obs.Default.NewGauge("online_buffer_rows",
		"Rows buffered across all streams awaiting window assembly.")
	bufferStreams = obs.Default.NewGauge("online_buffer_streams",
		"Distinct (job, component) streams currently buffered.")
	windowsScored = obs.Default.NewCounter("online_windows_scored_total",
		"Windows assembled and scored.")
	windowsDropped = obs.Default.NewCounterVec("online_windows_dropped_total",
		"Windows dropped before scoring, by reason (empty, sparse, schema).", "reason")
	eventsAnomalous = obs.Default.NewCounter("online_events_anomalous_total",
		"Anomalous window predictions emitted.")
)

// Event is one window-level prediction for one compute node.
type Event struct {
	JobID       int64
	Component   int
	WindowStart int64
	WindowEnd   int64
	Score       float64
	Anomalous   bool
}

// Predictor is the model contract the detector needs (satisfied by
// core.Prodigy). DetectVector must be safe for concurrent use: the
// detector calls it outside its buffer lock, possibly from many ingest
// goroutines at once.
type Predictor interface {
	DetectVector(vec []float64) (anomalous bool, score float64)
	FeatureNames() []string
}

// Config tunes the streaming detector.
type Config struct {
	// Window is the feature window length in seconds.
	Window int64
	// Stride is how far the window advances between predictions.
	Stride int64
	// Grace is how many seconds past a window's end to wait for stragglers
	// before flushing (dropped samples interpolate).
	Grace int64
	// Catalog must match the model's training catalog.
	Catalog *features.Catalog
}

// DefaultConfig returns a 60-second window advancing every 30 seconds.
func DefaultConfig() Config {
	return Config{Window: 60, Stride: 30, Grace: 2, Catalog: features.Default()}
}

// Detector is a streaming window detector. It is safe for concurrent
// Ingest calls (the LDMS aggregator contract): the buffer map is guarded
// by a mutex, while model scoring happens outside the lock through the
// stateless Predictor contract, so many nodes' windows can score in
// parallel — and concurrently with the HTTP serving layer sharing the
// same model.
type Detector struct {
	Cfg     Config
	Model   Predictor
	OnEvent func(Event)

	accumulated map[string]bool
	mu          sync.Mutex
	buffers     map[streamKey]*streamBuffer
}

type streamKey struct {
	job  int64
	comp int
}

// streamBuffer accumulates one node's rows until windows complete.
type streamBuffer struct {
	rows map[ldms.SamplerName][]ldms.Row
	// nextStart is the origin of the next window to flush.
	nextStart int64
	// watermark is the latest timestamp seen from any sampler.
	watermark int64
}

// NewDetector wires a streaming detector. onEvent is called synchronously
// from Ingest whenever a window completes; keep it fast or hand off.
func NewDetector(cfg Config, model Predictor, onEvent func(Event)) (*Detector, error) {
	if cfg.Window <= 0 || cfg.Stride <= 0 {
		return nil, fmt.Errorf("online: window %d / stride %d must be positive", cfg.Window, cfg.Stride)
	}
	if cfg.Catalog == nil {
		cfg.Catalog = features.Default()
	}
	if model == nil {
		return nil, fmt.Errorf("online: nil model")
	}
	acc := map[string]bool{}
	for _, name := range ldms.AccumulatedNames() {
		acc[name] = true
	}
	return &Detector{
		Cfg:         cfg,
		Model:       model,
		OnEvent:     onEvent,
		accumulated: acc,
		buffers:     make(map[streamKey]*streamBuffer),
	}, nil
}

// pendingWindow is an assembled window's feature vector, carried out of
// the buffer lock so the model scores it without blocking other ingests.
type pendingWindow struct {
	key        streamKey
	start, end int64
	vec        []float64
}

// Ingest implements ldms.Sink: buffer the row and flush any completed
// windows for its node. Window assembly happens under the buffer lock;
// model scoring and event delivery happen after it is released.
func (d *Detector) Ingest(r ldms.Row) {
	key := streamKey{job: r.JobID, comp: r.Component}
	d.mu.Lock()
	b, ok := d.buffers[key]
	if !ok {
		b = &streamBuffer{rows: make(map[ldms.SamplerName][]ldms.Row)}
		d.buffers[key] = b
	}
	b.rows[r.Sampler] = append(b.rows[r.Sampler], r)
	if r.Timestamp > b.watermark {
		b.watermark = r.Timestamp
	}
	ingestRows.Inc()
	ingestLag.Observe(float64(b.watermark - r.Timestamp))
	bufferRows.Add(1)
	bufferStreams.Set(float64(len(d.buffers)))
	var pending []pendingWindow
	for b.watermark >= b.nextStart+d.Cfg.Window+d.Cfg.Grace {
		if pw, ok := d.assembleWindow(key, b); ok {
			pending = append(pending, pw)
		}
		b.nextStart += d.Cfg.Stride
	}
	d.mu.Unlock()
	d.scoreAndEmit(pending)
}

// Flush forces prediction of any window that has at least half its data,
// for end-of-job cleanup. It returns the emitted events.
func (d *Detector) Flush() []Event {
	d.mu.Lock()
	var pending []pendingWindow
	keys := make([]streamKey, 0, len(d.buffers))
	for key := range d.buffers {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].job != keys[j].job {
			return keys[i].job < keys[j].job
		}
		return keys[i].comp < keys[j].comp
	})
	for _, key := range keys {
		b := d.buffers[key]
		for b.watermark >= b.nextStart+d.Cfg.Window/2 {
			if pw, ok := d.assembleWindow(key, b); ok {
				pending = append(pending, pw)
			}
			b.nextStart += d.Cfg.Stride
		}
	}
	d.mu.Unlock()
	return d.scoreAndEmit(pending)
}

// scoreAndEmit runs the model over assembled windows (outside the buffer
// lock) and delivers events in window order.
func (d *Detector) scoreAndEmit(pending []pendingWindow) []Event {
	if len(pending) == 0 {
		return nil
	}
	windowsScored.Add(float64(len(pending)))
	events := make([]Event, 0, len(pending))
	for _, pw := range pending {
		anomalous, score := d.Model.DetectVector(pw.vec)
		if anomalous {
			eventsAnomalous.Inc()
		}
		events = append(events, Event{
			JobID:       pw.key.job,
			Component:   pw.key.comp,
			WindowStart: pw.start,
			WindowEnd:   pw.end,
			Score:       score,
			Anomalous:   anomalous,
		})
	}
	if d.OnEvent != nil {
		for _, ev := range events {
			d.OnEvent(ev)
		}
	}
	return events
}

// logDrop explains one dropped window at debug level. This is a per-
// window-per-stream path: a misbehaving stream (wrong schema, constant
// gaps) would hit it every stride, so the process logger's token-bucket
// sampler (obs.Logger.SetRateLimit, prodigyd -log-rate) is what keeps it
// from flooding stderr — drops beyond the budget land in
// log_dropped_total instead.
func (d *Detector) logDrop(reason string, key streamKey, start int64) {
	if !obs.Log.Enabled(obs.LevelDebug) {
		return
	}
	obs.Debug("window dropped", "reason", reason,
		"job", key.job, "component", key.comp, "window_start", start)
}

// assembleWindow builds one window's feature vector and prunes rows that
// can no longer contribute to future windows. Caller holds d.mu.
func (d *Detector) assembleWindow(key streamKey, b *streamBuffer) (pendingWindow, bool) {
	start := b.nextStart
	end := start + d.Cfg.Window
	var tables []*timeseries.Table
	for _, sampler := range ldms.AllSamplers {
		rows := b.rows[sampler]
		if len(rows) == 0 {
			continue
		}
		tb := rowsToTable(rows, sampler, start, end)
		if tb.Len() > 0 {
			tables = append(tables, tb)
		}
	}
	if len(tables) == 0 {
		windowsDropped.With("empty").Inc()
		d.logDrop("empty", key, start)
		return pendingWindow{}, false
	}
	window := timeseries.Align(tables...)
	if window.Len() < int(d.Cfg.Window)/2 {
		windowsDropped.With("sparse").Inc()
		d.logDrop("sparse", key, start)
		return pendingWindow{}, false // too sparse to trust
	}
	window.InterpolateAll()
	acc := make([]string, 0, len(d.accumulated))
	for name := range d.accumulated {
		acc = append(acc, name)
	}
	sort.Strings(acc)
	window.DiffColumns(acc)
	window.SortColumns()

	want := len(d.Model.FeatureNames())
	if window.NumMetrics()*d.Cfg.Catalog.NumFeaturesPerSeries() != want {
		// Schema mismatch (e.g. a GPU node against a CPU model): skip
		// rather than emit garbage.
		windowsDropped.With("schema").Inc()
		d.logDrop("schema", key, start)
		return pendingWindow{}, false
	}
	vec := make([]float64, want)
	d.Cfg.Catalog.ExtractTableInto(vec, window)

	// Drop rows that can no longer contribute to any future window.
	horizon := start + d.Cfg.Stride
	pruned := 0
	for sampler, rows := range b.rows {
		keep := rows[:0]
		for _, r := range rows {
			if r.Timestamp >= horizon {
				keep = append(keep, r)
			}
		}
		pruned += len(rows) - len(keep)
		b.rows[sampler] = keep
	}
	bufferRows.Add(-float64(pruned))
	return pendingWindow{key: key, start: start, end: end, vec: vec}, true
}

// rowsToTable builds a sampler table over [start, end) from buffered rows.
func rowsToTable(rows []ldms.Row, sampler ldms.SamplerName, start, end int64) *timeseries.Table {
	var inWindow []ldms.Row
	for _, r := range rows {
		if r.Timestamp >= start && r.Timestamp < end {
			inWindow = append(inWindow, r)
		}
	}
	sort.Slice(inWindow, func(i, j int) bool { return inWindow[i].Timestamp < inWindow[j].Timestamp })
	ts := make([]int64, len(inWindow))
	for i, r := range inWindow {
		ts[i] = r.Timestamp
	}
	tb := timeseries.NewTable(ts)
	if len(inWindow) == 0 {
		return tb
	}
	// Collect the metric union, then fill columns.
	metricSet := map[string]bool{}
	for _, r := range inWindow {
		for m := range r.Values {
			metricSet[m] = true
		}
	}
	metrics := make([]string, 0, len(metricSet))
	for m := range metricSet {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		col := make([]float64, len(inWindow))
		for i, r := range inWindow {
			if v, ok := r.Values[m]; ok {
				col[i] = v
			} else {
				col[i] = timeseries.Missing
			}
		}
		tb.AddColumn(fmt.Sprintf("%s::%s", m, sampler), col)
	}
	return tb
}

// BuildWindowDataset slices stored telemetry into windows and extracts one
// sample per (job, component, window) — the training counterpart of the
// streaming detector. Ground truth comes from truth (job → anomalous
// components), matching DatasetBuilder.AddJob's convention.
func BuildWindowDataset(store *dsos.Store, jobs map[int64]map[int][2]string, apps map[int64]string,
	cfg Config) (*pipeline.Dataset, error) {
	gen := pipeline.NewDataGenerator(store)
	gen.TrimSeconds = 0 // windows handle boundaries themselves
	builder := &windowAccumulator{catalog: cfg.Catalog}

	jobIDs := make([]int64, 0, len(jobs))
	for id := range jobs {
		jobIDs = append(jobIDs, id)
	}
	sort.Slice(jobIDs, func(i, j int) bool { return jobIDs[i] < jobIDs[j] })

	// Per-job preprocessing and window extraction fan out across a bounded
	// worker pool (this loop dominates online-retrain wall time); each
	// worker fills its own per-job slot and the slots merge in sorted job
	// order below, so the dataset rows come out exactly as the serial loop
	// produced them.
	perJob := make([][]windowSample, len(jobIDs))
	errs := make([]error, len(jobIDs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobIDs) {
		workers = len(jobIDs)
	}
	if workers < 1 {
		workers = 1
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				jobID := jobIDs[i]
				tables, err := gen.JobTables(jobID)
				if err != nil {
					errs[i] = err
					continue
				}
				comps := store.Components(jobID)
				for _, comp := range comps {
					tb, ok := tables[comp]
					if !ok || tb.Len() == 0 {
						continue
					}
					meta := pipeline.SampleMeta{JobID: jobID, Component: comp, App: apps[jobID], Anomaly: "none", Label: pipeline.Healthy}
					if truth, anom := jobs[jobID][comp]; anom {
						meta.Anomaly = truth[0]
						meta.Config = truth[1]
						meta.Label = pipeline.Anomalous
					}
					last := tb.Timestamps[tb.Len()-1]
					for start := tb.Timestamps[0]; start+cfg.Window <= last+1; start += cfg.Stride {
						w := tb.Window(start, start+cfg.Window)
						if w.Len() < int(cfg.Window)/2 {
							continue
						}
						m := meta
						m.WindowStart = start
						// The vector escapes into the dataset, so it is
						// allocated here; the namespaced name table is
						// deferred to assembly, which builds it once
						// instead of per window.
						vec := make([]float64, w.NumMetrics()*cfg.Catalog.NumFeaturesPerSeries())
						cfg.Catalog.ExtractTableInto(vec, w)
						perJob[i] = append(perJob[i], windowSample{meta: m, order: w.Order, vec: vec})
					}
				}
			}
		}()
	}
	for i := range jobIDs {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, samples := range perJob {
		if errs[i] != nil {
			return nil, errs[i]
		}
		for _, s := range samples {
			builder.addVec(s.meta, s.order, s.vec)
		}
	}
	return builder.build()
}

// windowAccumulator assembles the window dataset.
type windowAccumulator struct {
	catalog *features.Catalog
	names   []string
	rows    [][]float64
	meta    []pipeline.SampleMeta
}

// windowSample is one extracted window row awaiting ordered assembly. It
// carries the source table's metric order instead of the namespaced name
// table, which the accumulator builds once from the first sample.
type windowSample struct {
	meta  pipeline.SampleMeta
	order []string
	vec   []float64
}

func (w *windowAccumulator) add(meta pipeline.SampleMeta, tb *timeseries.Table) {
	vec := make([]float64, tb.NumMetrics()*w.catalog.NumFeaturesPerSeries())
	w.catalog.ExtractTableInto(vec, tb)
	w.addVec(meta, tb.Order, vec)
}

// addVec appends a pre-extracted vector; extraction can then run on any
// goroutine while assembly stays ordered and single-goroutine.
func (w *windowAccumulator) addVec(meta pipeline.SampleMeta, order []string, vec []float64) {
	if w.names == nil {
		w.names = w.catalog.TableFeatureNames(order)
	}
	if len(vec) != len(w.names) {
		return // mixed schema window; skip
	}
	w.rows = append(w.rows, vec)
	w.meta = append(w.meta, meta)
}

func (w *windowAccumulator) build() (*pipeline.Dataset, error) {
	if len(w.rows) == 0 {
		return nil, fmt.Errorf("online: no windows extracted")
	}
	flat := make([]float64, 0, len(w.rows)*len(w.names))
	for _, r := range w.rows {
		flat = append(flat, r...)
	}
	return &pipeline.Dataset{
		FeatureNames: w.names,
		X:            matFromFlat(len(w.rows), len(w.names), flat),
		Meta:         w.meta,
	}, nil
}

// matFromFlat wraps a flat row-major buffer as a matrix.
func matFromFlat(rows, cols int, data []float64) *mat.Matrix {
	return mat.NewFromData(rows, cols, data)
}
