package online_test

import (
	"sync"
	"testing"

	"prodigy/internal/cluster"
	"prodigy/internal/core"
	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/online"
	"prodigy/internal/pipeline"
	"prodigy/internal/vae"
)

// trainWindowModel builds a window-level training campaign (healthy +
// memleak jobs), trains a Prodigy on the window dataset, and returns it
// with the streaming config.
func trainWindowModel(t *testing.T, seed int64) (*core.Prodigy, online.Config, *cluster.System) {
	t.Helper()
	sys := cluster.NewSystem("test", 8, cluster.EclipseNode(), 0)
	store := dsos.NewStore()
	truth := map[int64]map[int][2]string{}
	appsByJob := map[int64]string{}

	submit := func(app string, inj hpas.Injector) {
		job, err := sys.Submit(app, 4, 150, seed)
		if err != nil {
			t.Fatal(err)
		}
		jobTruth := map[int][2]string{}
		if inj != nil {
			for _, n := range job.Nodes[:2] {
				job.Injectors[n] = inj
				jobTruth[n] = [2]string{inj.Name(), inj.Config()}
			}
		}
		sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.005, Seed: seed + job.ID}, store)
		truth[job.ID] = jobTruth
		appsByJob[job.ID] = app
		if err := sys.Complete(job.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("lammps", nil)
		submit("sw4", nil)
	}
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.05})

	ocfg := online.Config{Window: 40, Stride: 20, Grace: 2, Catalog: features.Minimal()}
	ds, err := online.BuildWindowDataset(store, truth, appsByJob, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() < 50 {
		t.Fatalf("only %d windows extracted", ds.Len())
	}

	cfg := core.DefaultConfig()
	cfg.VAE = vae.Config{
		HiddenDims: []int{24}, LatentDim: 4, Activation: "tanh",
		LearningRate: 3e-3, BatchSize: 32, Epochs: 200, Beta: 1e-3, ClipNorm: 5, Seed: 1,
	}
	cfg.Trainer = pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"}
	cfg.Catalog = features.Minimal()
	p := core.New(cfg)
	if err := p.Fit(ds, nil); err != nil {
		t.Fatal(err)
	}
	p.TuneThreshold(ds)
	return p, ocfg, sys
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := online.NewDetector(online.Config{Window: 0, Stride: 1}, nil, nil); err == nil {
		t.Fatal("zero window should error")
	}
	if _, err := online.NewDetector(online.Config{Window: 10, Stride: 10}, nil, nil); err == nil {
		t.Fatal("nil model should error")
	}
}

// TestStreamingDetection runs a fresh anomalous job through the live
// collection path with the detector as the sink, and checks the emitted
// window events flag the injected nodes.
func TestStreamingDetection(t *testing.T) {
	p, ocfg, sys := trainWindowModel(t, 41)

	var mu sync.Mutex
	var events []online.Event
	det, err := online.NewDetector(ocfg, p, func(ev online.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// A new job: memleak on its first two nodes, streamed straight into
	// the detector (no store involved).
	job, err := sys.Submit("lammps", 4, 150, 77)
	if err != nil {
		t.Fatal(err)
	}
	leak := hpas.Memleak{SizeMB: 10, Period: 0.05}
	injected := map[int]bool{}
	for _, n := range job.Nodes[:2] {
		job.Injectors[n] = leak
		injected[n] = true
	}
	sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.005, Seed: 77}, det)
	det.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no window events emitted")
	}
	// Every node should produce several windows over a 150 s run with
	// stride 20.
	perNode := map[int]int{}
	flaggedPerNode := map[int]int{}
	for _, ev := range events {
		if ev.JobID != job.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		perNode[ev.Component]++
		if ev.Anomalous {
			flaggedPerNode[ev.Component]++
		}
		if ev.WindowEnd-ev.WindowStart != ocfg.Window {
			t.Fatalf("window size wrong: %+v", ev)
		}
	}
	for _, n := range job.Nodes {
		if perNode[n] < 3 {
			t.Fatalf("node %d produced only %d windows", n, perNode[n])
		}
	}
	// Injected nodes must be flagged in at least one window (the leak
	// grows, so late windows are the most anomalous); healthy nodes must
	// be mostly clean.
	for n := range injected {
		if flaggedPerNode[n] == 0 {
			t.Fatalf("injected node %d never flagged (windows: %d)", n, perNode[n])
		}
	}
	for _, n := range job.Nodes {
		if injected[n] {
			continue
		}
		if flaggedPerNode[n] > perNode[n]/2 {
			t.Fatalf("healthy node %d flagged in %d/%d windows", n, flaggedPerNode[n], perNode[n])
		}
	}
}

// TestStreamingEventOrderAndMemory checks windows advance by stride and
// old rows are discarded.
func TestStreamingWindowsAdvance(t *testing.T) {
	p, ocfg, sys := trainWindowModel(t, 42)
	var events []online.Event
	det, err := online.NewDetector(ocfg, p, func(ev online.Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	job, err := sys.Submit("sw4", 1, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys.CollectJob(job, ldms.CollectConfig{Seed: 5}, det)
	det.Flush()
	if len(events) < 4 {
		t.Fatalf("%d events", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].WindowStart != events[i-1].WindowStart+ocfg.Stride {
			t.Fatalf("windows not advancing by stride: %+v then %+v", events[i-1], events[i])
		}
	}
}
