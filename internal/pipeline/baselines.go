package pipeline

import (
	"encoding/json"
	"fmt"
	"sync"

	"prodigy/internal/baselines/iforest"
	"prodigy/internal/baselines/kmeans"
	"prodigy/internal/baselines/lof"
	"prodigy/internal/baselines/naive"
	"prodigy/internal/mat"
)

// Model adapters for the classic baselines, promoting them from
// eval-only detectors to first-class pipeline citizens: they train
// through ModelTrainer/TrainAll, serialize into Artifacts, and — because
// AnomalyDetector charges every Scores call to obs.CostFor(ModelKind) —
// their measured ns/row lands in the cost ledger the ensemble budget
// scheduler ranks fleet members by.
//
// All four satisfy the Model contract's concurrency clause: their Scores
// methods read fitted state without mutating it.

// IForestModel adapts iforest.Forest to the Model contract.
type IForestModel struct{ *iforest.Forest }

// NewIForestModel constructs an unfitted isolation-forest model.
func NewIForestModel(cfg iforest.Config) (*IForestModel, error) {
	f, err := iforest.New(cfg)
	if err != nil {
		return nil, err
	}
	return &IForestModel{Forest: f}, nil
}

// FitHealthy implements Model.
func (m *IForestModel) FitHealthy(x *mat.Matrix) error { return m.Fit(x) }

// Kind implements Model.
func (m *IForestModel) Kind() string { return "iforest" }

// LOFModel adapts lof.LOF to the Model contract.
type LOFModel struct{ *lof.LOF }

// NewLOFModel constructs an unfitted local-outlier-factor model.
func NewLOFModel(cfg lof.Config) (*LOFModel, error) {
	l, err := lof.New(cfg)
	if err != nil {
		return nil, err
	}
	return &LOFModel{LOF: l}, nil
}

// FitHealthy implements Model.
func (m *LOFModel) FitHealthy(x *mat.Matrix) error { return m.Fit(x) }

// Kind implements Model.
func (m *LOFModel) Kind() string { return "lof" }

// KMeansModel adapts kmeans.KMeans to the Model contract.
type KMeansModel struct{ *kmeans.KMeans }

// NewKMeansModel constructs an unfitted clustering model.
func NewKMeansModel(cfg kmeans.Config) (*KMeansModel, error) {
	km, err := kmeans.New(cfg)
	if err != nil {
		return nil, err
	}
	return &KMeansModel{KMeans: km}, nil
}

// FitHealthy implements Model.
func (m *KMeansModel) FitHealthy(x *mat.Matrix) error { return m.Fit(x) }

// Kind implements Model.
func (m *KMeansModel) Kind() string { return "kmeans" }

// NaiveModel adapts the naive.ZScore envelope scorer to the Model
// contract — the µs-cost pre-filter candidate for the cascade ensemble.
type NaiveModel struct{ *naive.ZScore }

// NewNaiveModel constructs an unfitted z-score model.
func NewNaiveModel() *NaiveModel { return &NaiveModel{ZScore: &naive.ZScore{}} }

// FitHealthy implements Model.
func (m *NaiveModel) FitHealthy(x *mat.Matrix) error { return m.Fit(x) }

// Kind implements Model.
func (m *NaiveModel) Kind() string { return "naive" }

// modelKinds maps artifact ModelKind strings to decoders, so packages
// outside pipeline (internal/ensemble) can plug new kinds into
// rehydrate/LoadArtifact without an import cycle. Registration happens
// in init functions; lookups are read-only afterwards.
var modelKinds sync.Map // string -> func(json.RawMessage) (Model, error)

// RegisterModelKind installs a decoder for a model kind beyond the
// built-in set. Later registrations for the same kind win (tests only).
func RegisterModelKind(kind string, decode func(json.RawMessage) (Model, error)) {
	modelKinds.Store(kind, decode)
}

// decodeRegistered consults the registry for kinds rehydrate's built-in
// switch doesn't know.
func decodeRegistered(kind string, blob json.RawMessage) (Model, bool, error) {
	fn, ok := modelKinds.Load(kind)
	if !ok {
		return nil, false, nil
	}
	m, err := fn.(func(json.RawMessage) (Model, error))(blob)
	return m, true, err
}

func init() {
	RegisterModelKind("iforest", func(blob json.RawMessage) (Model, error) {
		f := &iforest.Forest{}
		if err := json.Unmarshal(blob, f); err != nil {
			return nil, err
		}
		return &IForestModel{Forest: f}, nil
	})
	RegisterModelKind("lof", func(blob json.RawMessage) (Model, error) {
		l := &lof.LOF{}
		if err := json.Unmarshal(blob, l); err != nil {
			return nil, err
		}
		return &LOFModel{LOF: l}, nil
	})
	RegisterModelKind("kmeans", func(blob json.RawMessage) (Model, error) {
		km := &kmeans.KMeans{}
		if err := json.Unmarshal(blob, km); err != nil {
			return nil, err
		}
		return &KMeansModel{KMeans: km}, nil
	})
	RegisterModelKind("naive", func(blob json.RawMessage) (Model, error) {
		z := &naive.ZScore{}
		if err := json.Unmarshal(blob, z); err != nil {
			return nil, err
		}
		return &NaiveModel{ZScore: z}, nil
	})
}

// NewModelOfKind constructs an unfitted model for the named kind with
// package defaults — the constructor ensemble.Train uses to build fleet
// members from kind strings. VAE/USAD need dimension- and budget-aware
// configs, so they are not constructible here; callers supply those via
// explicit TrainJobs.
func NewModelOfKind(kind string, seed int64) (Model, error) {
	switch kind {
	case "iforest":
		cfg := iforest.DefaultConfig()
		cfg.Seed = seed
		return NewIForestModel(cfg)
	case "lof":
		return NewLOFModel(lof.DefaultConfig())
	case "kmeans":
		cfg := kmeans.DefaultConfig()
		cfg.Seed = seed
		return NewKMeansModel(cfg)
	case "naive":
		return NewNaiveModel(), nil
	default:
		return nil, fmt.Errorf("pipeline: no default constructor for model kind %q", kind)
	}
}
