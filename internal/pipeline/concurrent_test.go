package pipeline_test

import (
	"sync"
	"testing"
)

// bigBatch tiles a dataset's rows until the batch is large enough to take
// AnomalyDetector.Scores' parallel fan-out path.
func bigBatchIdx(rows, want int) []int {
	idx := make([]int, want)
	for i := range idx {
		idx[i] = i % rows
	}
	return idx
}

// TestParallelScoresMatchesSerial checks the fan-out path in
// AnomalyDetector.Scores is a pure optimization: scoring a large batch
// must produce bitwise the same scores as scoring each row alone (which
// stays on the serial path).
func TestParallelScoresMatchesSerial(t *testing.T) {
	ds, _ := tinyCampaign(t, 31)
	artifact := trainProdigyArtifact(t, ds)
	det, err := artifact.Detector()
	if err != nil {
		t.Fatal(err)
	}
	big := ds.X.SelectRows(bigBatchIdx(ds.X.Rows, 300))
	got := det.Scores(big)
	if len(got) != 300 {
		t.Fatalf("got %d scores for 300 rows", len(got))
	}
	for i := 0; i < big.Rows; i++ {
		one := det.Scores(big.SelectRows([]int{i}))
		if got[i] != one[0] {
			t.Fatalf("row %d: parallel score %v != serial score %v", i, got[i], one[0])
		}
	}
}

// TestConcurrentDetectorPredict hammers one detector from many goroutines
// — the pipeline-level regression test for the model-state race, run
// under -race in CI.
func TestConcurrentDetectorPredict(t *testing.T) {
	ds, _ := tinyCampaign(t, 32)
	artifact := trainProdigyArtifact(t, ds)
	det, err := artifact.Detector()
	if err != nil {
		t.Fatal(err)
	}
	want := det.Scores(ds.X)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				preds, scores := det.Predict(ds.X)
				for j := range scores {
					if scores[j] != want[j] {
						errs <- "concurrent Predict returned corrupted scores"
						return
					}
					if (preds[j] == 1) != (scores[j] > det.Threshold()) {
						errs <- "prediction inconsistent with threshold"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
