// Package pipeline implements the data processing and training pipeline of
// the paper's deployment architecture (§4.2): DataGenerator (query +
// preprocessing), DataPipeline (feature extraction + scaling), ModelTrainer
// (training + artifact persistence) and AnomalyDetector (inference). The
// classes mirror Figure 3 and Figure 4 of the paper.
package pipeline

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/ldms"
	"prodigy/internal/mat"
	"prodigy/internal/timeseries"
)

// Labels for samples. A sample is one (job, component) pair reduced to a
// feature vector (paper §1, footnote 3).
const (
	Healthy   = 0
	Anomalous = 1
)

// SampleMeta carries the identity and ground truth of one sample.
type SampleMeta struct {
	JobID     int64  `json:"job_id"`
	Component int    `json:"component_id"`
	App       string `json:"app"`
	// Anomaly is the injected anomaly type ("none" for healthy runs).
	Anomaly string `json:"anomaly"`
	// Config is the injector configuration string (Table 2).
	Config string `json:"config"`
	Label  int    `json:"label"`
	// WindowStart marks the window origin (seconds) for window-level
	// samples produced by the online-detection extension; 0 for whole-run
	// samples.
	WindowStart int64 `json:"window_start,omitempty"`
}

// Dataset is a feature matrix with per-sample metadata.
type Dataset struct {
	FeatureNames []string
	X            *mat.Matrix
	Meta         []SampleMeta
}

// Labels returns the per-sample ground-truth labels.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Meta))
	for i, m := range d.Meta {
		out[i] = m.Label
	}
	return out
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Meta) }

// Subset returns a dataset restricted to the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	meta := make([]SampleMeta, len(idx))
	for i, j := range idx {
		meta[i] = d.Meta[j]
	}
	return &Dataset{FeatureNames: d.FeatureNames, X: d.X.SelectRows(idx), Meta: meta}
}

// IndicesWhere returns the indices of samples satisfying pred.
func (d *Dataset) IndicesWhere(pred func(SampleMeta) bool) []int {
	var out []int
	for i, m := range d.Meta {
		if pred(m) {
			out = append(out, i)
		}
	}
	return out
}

// HealthyIndices returns the indices of healthy samples.
func (d *Dataset) HealthyIndices() []int {
	return d.IndicesWhere(func(m SampleMeta) bool { return m.Label == Healthy })
}

// AnomalousIndices returns the indices of anomalous samples.
func (d *Dataset) AnomalousIndices() []int {
	return d.IndicesWhere(func(m SampleMeta) bool { return m.Label == Anomalous })
}

// Concat appends other's samples to d's (feature spaces must match).
func Concat(a, b *Dataset) (*Dataset, error) {
	if a.X.Cols != b.X.Cols {
		return nil, fmt.Errorf("pipeline: concat width mismatch %d vs %d", a.X.Cols, b.X.Cols)
	}
	meta := make([]SampleMeta, 0, len(a.Meta)+len(b.Meta))
	meta = append(meta, a.Meta...)
	meta = append(meta, b.Meta...)
	return &Dataset{FeatureNames: a.FeatureNames, X: mat.VStack(a.X, b.X), Meta: meta}, nil
}

// DataGenerator performs the preprocessing of §4.2.1: query raw sampler
// data for a job, trim initialization/termination boundaries, linearly
// interpolate missing values, and first-difference accumulated counters.
type DataGenerator struct {
	Store *dsos.Store
	// TrimSeconds removes this many seconds from each end (paper: 60).
	TrimSeconds int
	// accumulated caches the counter list.
	accumulated []string
}

// NewDataGenerator returns a generator with the paper's 60-second trim.
func NewDataGenerator(store *dsos.Store) *DataGenerator {
	return &DataGenerator{Store: store, TrimSeconds: 60, accumulated: ldms.AccumulatedNames()}
}

// JobTables returns the preprocessed per-component telemetry tables of a
// job, ready for feature extraction.
func (g *DataGenerator) JobTables(jobID int64) (map[int]*timeseries.Table, error) {
	return g.JobTablesInto(nil, jobID)
}

// JobTablesInto is JobTables with table storage carved out of the arena
// (nil falls back to plain allocation): the per-request serving path pools
// arenas so steady-state job assembly stops allocating per column. The
// preprocessing steps (interpolation, differencing, trimming, column sort)
// all run in place, so only the query/align stage touches the arena.
func (g *DataGenerator) JobTablesInto(a *timeseries.Arena, jobID int64) (map[int]*timeseries.Table, error) {
	raw, err := g.Store.QueryJobInto(a, jobID)
	if err != nil {
		return nil, err
	}
	acc := g.accumulated
	if acc == nil {
		acc = ldms.AccumulatedNames()
	}
	for _, tb := range raw {
		tb.InterpolateAll()
		tb.DiffColumns(acc)
		tb.TrimBoundary(g.TrimSeconds)
		tb.SortColumns()
	}
	return raw, nil
}

// DataPipeline performs feature extraction (§4.2.1's FeatureExtractor): it
// turns preprocessed tables into fixed-width feature vectors with stable
// names.
type DataPipeline struct {
	Catalog *features.Catalog
}

// NewDataPipeline returns a pipeline over the default (efficient) catalog.
func NewDataPipeline() *DataPipeline {
	return &DataPipeline{Catalog: features.Default()}
}

// ExtractTable converts one component's table into (names, vector).
func (p *DataPipeline) ExtractTable(tb *timeseries.Table) ([]string, []float64) {
	return p.Catalog.ExtractTable(tb)
}

// ExtractInto writes one component's flat feature vector into dst, whose
// length must be tb.NumMetrics()·Catalog.NumFeaturesPerSeries(). Pair with
// Catalog.TableFeatureNames to recover the names without reallocating them
// per sample.
func (p *DataPipeline) ExtractInto(dst []float64, tb *timeseries.Table) {
	p.Catalog.ExtractTableInto(dst, tb)
}

// jobSpec pairs a job ID with its ground truth for dataset assembly.
type jobSpec struct {
	jobID int64
	app   string
	// perNode ground truth; nodes absent are healthy.
	anomalies map[int]anomalyTruth
}

type anomalyTruth struct {
	name   string
	config string
}

// DatasetBuilder assembles labeled datasets from a store, extracting
// samples in parallel.
type DatasetBuilder struct {
	Gen  *DataGenerator
	Pipe *DataPipeline

	mu    sync.Mutex
	specs []jobSpec
	// Feature-name cache: the name list depends only on (catalog, metric
	// order) and dominated per-build allocations before it was cached.
	namesCat   *features.Catalog
	namesKey   string
	namesCache []string
}

// NewDatasetBuilder wires a generator and pipeline over one store.
func NewDatasetBuilder(store *dsos.Store) *DatasetBuilder {
	return &DatasetBuilder{Gen: NewDataGenerator(store), Pipe: NewDataPipeline()}
}

// AddJob registers a job's ground truth: the application it ran and, per
// anomalous node, the injected anomaly name and config.
func (b *DatasetBuilder) AddJob(jobID int64, app string, anomalies map[int][2]string) {
	spec := jobSpec{jobID: jobID, app: app, anomalies: make(map[int]anomalyTruth)}
	for node, a := range anomalies {
		spec.anomalies[node] = anomalyTruth{name: a[0], config: a[1]}
	}
	b.mu.Lock()
	b.specs = append(b.specs, spec)
	b.mu.Unlock()
}

// task pairs one sample's metadata with its preprocessed table.
type task struct {
	meta  SampleMeta
	table *timeseries.Table
}

// collectTasks gathers the preprocessed per-node tables of every
// registered job. Per-job preprocessing (query, interpolation,
// differencing, trimming) fans out across a bounded worker pool — it
// dominates end-to-end dataset construction on large campaigns — while
// the result keeps the deterministic (job registration, component) order
// of the serial loop: workers fill per-spec slots that are concatenated
// in spec order afterwards.
//
// Each worker carves its query/align storage out of one pooled arena
// (DESIGN.md §15), so the per-column allocations that used to dominate
// dataset builds disappear. The returned tables reference arena memory:
// callers must hand the arenas back with timeseries.PutArena only after
// they are done with every table — Build/BuildPartitioned release them
// after feature extraction.
func (b *DatasetBuilder) collectTasks() ([]task, []*timeseries.Arena, error) {
	b.mu.Lock()
	specs := make([]jobSpec, len(b.specs))
	copy(specs, b.specs)
	b.mu.Unlock()

	perSpec := make([][]task, len(specs))
	errs := make([]error, len(specs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	arenas := make([]*timeseries.Arena, workers)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		arenas[w] = timeseries.GetArena()
		wg.Add(1)
		go func(arena *timeseries.Arena) {
			defer wg.Done()
			for i := range jobs {
				spec := specs[i]
				tables, err := b.Gen.JobTablesInto(arena, spec.jobID)
				if err != nil {
					errs[i] = fmt.Errorf("pipeline: job %d: %w", spec.jobID, err)
					continue
				}
				comps := b.Gen.Store.Components(spec.jobID)
				for _, comp := range comps {
					tb, ok := tables[comp]
					if !ok {
						continue
					}
					meta := SampleMeta{JobID: spec.jobID, Component: comp, App: spec.app, Anomaly: "none", Label: Healthy}
					if truth, anom := spec.anomalies[comp]; anom {
						meta.Anomaly = truth.name
						meta.Config = truth.config
						meta.Label = Anomalous
					}
					perSpec[i] = append(perSpec[i], task{meta: meta, table: tb})
				}
			}
		}(arenas[w])
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var tasks []task
	for i, ts := range perSpec {
		if errs[i] != nil {
			releaseArenas(arenas)
			return nil, nil, errs[i]
		}
		tasks = append(tasks, ts...)
	}
	if len(tasks) == 0 {
		releaseArenas(arenas)
		return nil, nil, fmt.Errorf("pipeline: no samples to build")
	}
	return tasks, arenas, nil
}

// releaseArenas recycles the build arenas once every table carved from
// them is dead.
func releaseArenas(arenas []*timeseries.Arena) {
	for _, a := range arenas {
		timeseries.PutArena(a)
	}
}

// featureNames returns the qualified feature names for a metric order,
// reusing the cached list when the catalog and schema are unchanged —
// repeated builds (folds, benchmarks) otherwise re-allocate thousands
// of identical strings.
func (b *DatasetBuilder) featureNames(cat *features.Catalog, order []string) []string {
	key := strings.Join(order, "\x1f")
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.namesCat == cat && b.namesKey == key {
		return b.namesCache
	}
	names := cat.TableFeatureNames(order)
	b.namesCat, b.namesKey, b.namesCache = cat, key, names
	return names
}

// NodeClass identifies a node's metric-schema class for heterogeneous
// systems: "gpu" for nodes reporting the dcgm sampler, "cpu" otherwise.
func NodeClass(tb *timeseries.Table) string {
	for _, m := range tb.Order {
		if strings.HasSuffix(m, "::dcgm") {
			return "gpu"
		}
	}
	return "cpu"
}

// Build extracts every registered job into one dataset. Samples appear in
// (job registration, component) order. All nodes must share one metric
// schema; for mixed CPU/GPU campaigns use BuildPartitioned.
func (b *DatasetBuilder) Build() (*Dataset, error) {
	tasks, arenas, err := b.collectTasks()
	if err != nil {
		return nil, err
	}
	// The dataset matrix is fully materialized by extract; the
	// arena-backed tables are dead afterwards.
	defer releaseArenas(arenas)
	return b.extract(tasks)
}

// BuildPartitioned extracts every registered job into one dataset per node
// class ("cpu", "gpu") — the per-class models the paper's §7 future work
// calls for on heterogeneous systems, where GPU and CPU nodes produce
// different metric sets.
func (b *DatasetBuilder) BuildPartitioned() (map[string]*Dataset, error) {
	tasks, arenas, err := b.collectTasks()
	if err != nil {
		return nil, err
	}
	defer releaseArenas(arenas)
	byClass := map[string][]task{}
	for _, t := range tasks {
		c := NodeClass(t.table)
		byClass[c] = append(byClass[c], t)
	}
	out := make(map[string]*Dataset, len(byClass))
	for c, ts := range byClass {
		ds, err := b.extract(ts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: class %s: %w", c, err)
		}
		out[c] = ds
	}
	return out, nil
}

// extract runs feature extraction over tasks in parallel and assembles the
// dataset. Workers write each sample's features directly into its matrix
// row — no per-sample vectors are allocated — and tasks are
// range-partitioned so the row contents are deterministic for any worker
// count. Parallelism lives here, across samples; each worker extracts its
// tables serially with one pooled workspace.
func (b *DatasetBuilder) extract(tasks []task) (*Dataset, error) {
	cat := b.Pipe.Catalog
	per := cat.NumFeaturesPerSeries()
	width := tasks[0].table.NumMetrics() * per
	for i, t := range tasks {
		if n := t.table.NumMetrics() * per; n != width {
			return nil, fmt.Errorf("pipeline: sample %d has %d features, expected %d (mismatched metric schemas across jobs)", i, n, width)
		}
	}
	names := b.featureNames(cat, tasks[0].table.Order)
	x := mat.New(len(tasks), width)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(tasks)/workers, (w+1)*len(tasks)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ws := features.GetWorkspace()
			defer features.PutWorkspace(ws)
			for i := lo; i < hi; i++ {
				tb := tasks[i].table
				row := x.Row(i)
				for mi, m := range tb.Order {
					cat.ExtractSeriesInto(row[mi*per:(mi+1)*per], tb.Columns[m], ws)
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	meta := make([]SampleMeta, len(tasks))
	for i := range tasks {
		meta[i] = tasks[i].meta
	}
	return &Dataset{FeatureNames: names, X: x, Meta: meta}, nil
}
