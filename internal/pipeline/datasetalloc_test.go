package pipeline_test

import (
	"testing"

	"prodigy/internal/cluster"
	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/pipeline"
)

// tinyBuilder simulates the tinyCampaign jobs and returns the builder
// without building, so tests can call Build repeatedly (alloc pins,
// arena-reuse determinism).
func tinyBuilder(t testing.TB, seed int64) (*pipeline.DatasetBuilder, *dsos.Store) {
	t.Helper()
	sys := cluster.NewSystem("test", 8, cluster.VoltaNode(), 0)
	store := dsos.NewStore()
	builder := pipeline.NewDatasetBuilder(store)
	builder.Gen.TrimSeconds = 20
	builder.Pipe.Catalog = features.Minimal()

	submit := func(app string, inj hpas.Injector) {
		job, err := sys.Submit(app, 4, 140, seed)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int][2]string{}
		if inj != nil {
			for _, n := range job.Nodes[:2] {
				job.Injectors[n] = inj
				truth[n] = [2]string{inj.Name(), inj.Config()}
			}
		}
		sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.01, Seed: seed + job.ID}, store)
		builder.AddJob(job.ID, app, truth)
		if err := sys.Complete(job.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("lammps", nil)
		submit("nas-cg", nil)
	}
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.1})
	submit("nas-cg", hpas.CPUOccupy{Utilization: 1})
	return builder, store
}

// TestDatasetBuildArenaDeterminism rebuilds the same campaign through
// the arena-backed collect path: the second build reuses pooled arenas
// whose slabs come back dirty, so bit-identical output proves the
// query/align stage fully overwrites every carved slice.
func TestDatasetBuildArenaDeterminism(t *testing.T) {
	builder, _ := tinyBuilder(t, 5)
	first, err := builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := append([]float64(nil), first.X.Data...)
	for round := 0; round < 2; round++ {
		ds, err := builder.Build()
		if err != nil {
			t.Fatal(err)
		}
		if ds.X.Rows != first.X.Rows || ds.X.Cols != first.X.Cols {
			t.Fatalf("round %d: shape %dx%d, want %dx%d", round, ds.X.Rows, ds.X.Cols, first.X.Rows, first.X.Cols)
		}
		for i, v := range ds.X.Data {
			if v != ref[i] {
				t.Fatalf("round %d: cell %d drifted: %v vs %v", round, i, v, ref[i])
			}
		}
	}
}

// TestDatasetBuildAllocs pins the steady-state allocation count of the
// offline dataset build (DESIGN.md §16 satellite of the cascade PR).
// With query/align carved from pooled arenas, what remains is the
// output matrix, sample metadata and worker bookkeeping — all O(samples)
// — instead of the former per-column allocation storm. A regression here
// lands on every campaign build and on BENCH_features.json's
// DatasetBuild entry, so the bound is deliberately tight.
func TestDatasetBuildAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	builder, _ := tinyBuilder(t, 7)
	// Warm the arena pool and feature workspaces.
	for i := 0; i < 3; i++ {
		if _, err := builder.Build(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := builder.Build(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("DatasetBuilder.Build: %.1f allocs/run", allocs)
	const maxAllocs = 256 // measured 181 on the 32-sample tiny campaign
	if allocs > maxAllocs {
		t.Errorf("Build allocated %.1f times per run, over the %d pin", allocs, maxAllocs)
	}
}
