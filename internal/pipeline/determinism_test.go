package pipeline_test

import (
	"testing"

	"prodigy/internal/pipeline"
	"prodigy/internal/vae"
)

// trainAndScore is one complete run: simulate the campaign, build the
// dataset, select features, train the VAE, and score every sample.
func trainAndScore(t *testing.T, seed int64) []float64 {
	t.Helper()
	ds, _ := tinyCampaign(t, seed)
	trainer := &pipeline.ModelTrainer{
		Cfg: pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"},
		NewModel: func(in int) (pipeline.Model, error) {
			cfg := vae.DefaultConfig(in)
			cfg.HiddenDims = []int{24}
			cfg.LatentDim = 4
			cfg.Epochs = 60
			cfg.BatchSize = 16
			cfg.LearningRate = 3e-3
			cfg.Seed = 42
			return pipeline.NewVAEModel(cfg)
		},
	}
	artifact, err := trainer.Train(ds, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	det, err := artifact.Detector()
	if err != nil {
		t.Fatal(err)
	}
	return det.Scores(ds.X)
}

// TestDeterministicTrainScore is the behavioural twin of the seededrand
// analyzer: with every random draw flowing through explicitly seeded
// generators, two complete train+score runs from the same seed must
// produce bit-for-bit identical anomaly scores. Any drift here means a
// hidden entropy source crept into the pipeline and Table 2 / Figure 6
// regeneration is no longer reproducible.
func TestDeterministicTrainScore(t *testing.T) {
	a := trainAndScore(t, 11)
	b := trainAndScore(t, 11)
	if len(a) != len(b) {
		t.Fatalf("runs scored %d vs %d samples", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: score %v vs %v — training is not deterministic", i, a[i], b[i])
		}
	}
}
