package pipeline_test

import (
	"testing"

	"prodigy/internal/pipeline"
)

// TestInstrumentationZeroAllocDelta pins the observability cost of the
// scoring hot path: the score sketch, the cost ledger and the throughput
// counters must add zero allocations per Scores call — toggling
// instrumentation off must not change the allocation count.
func TestInstrumentationZeroAllocDelta(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops Puts under -race")
	}
	ds, _ := tinyCampaign(t, 33)
	artifact := trainProdigyArtifact(t, ds)
	det, err := artifact.Detector()
	if err != nil {
		t.Fatal(err)
	}
	batch := ds.X.SelectRows([]int{0, 1, 2, 3})

	measure := func(on bool) float64 {
		prev := pipeline.SetInstrumentation(on)
		defer pipeline.SetInstrumentation(prev)
		det.Scores(batch) // warm the workspace pools outside the count
		return testing.AllocsPerRun(100, func() { det.Scores(batch) })
	}
	withObs := measure(true)
	withoutObs := measure(false)
	if withObs != withoutObs {
		t.Fatalf("instrumentation adds allocations to steady-state scoring: %v allocs/run on vs %v off",
			withObs, withoutObs)
	}
}

// TestSetInstrumentationRoundTrip pins the toggle contract: Swap-style
// semantics returning the previous state, default on.
func TestSetInstrumentationRoundTrip(t *testing.T) {
	prev := pipeline.SetInstrumentation(false)
	if !prev {
		// Some other test may have toggled; restore and skip rather than
		// assert a global default this test does not own.
		pipeline.SetInstrumentation(prev)
		t.Skip("instrumentation was already off")
	}
	if on := pipeline.SetInstrumentation(true); on {
		t.Fatal("SetInstrumentation(false) did not stick")
	}
	if on := pipeline.SetInstrumentation(true); !on {
		t.Fatal("SetInstrumentation(true) did not stick")
	}
}
