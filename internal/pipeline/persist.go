package pipeline

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"prodigy/internal/mat"
)

// datasetWire is the gob wire format for Dataset.
type datasetWire struct {
	FeatureNames []string
	Rows, Cols   int
	Data         []float64
	Meta         []SampleMeta
}

// SaveDataset writes a dataset to path as gzip-compressed gob, creating
// parent directories. Use the conventional ".dsgz" extension.
func SaveDataset(ds *Dataset, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := gob.NewEncoder(zw)
	wire := datasetWire{
		FeatureNames: ds.FeatureNames,
		Rows:         ds.X.Rows,
		Cols:         ds.X.Cols,
		Data:         ds.X.Data,
		Meta:         ds.Meta,
	}
	if err := enc.Encode(wire); err != nil {
		return err
	}
	return zw.Close()
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var wire datasetWire
	if err := gob.NewDecoder(zr).Decode(&wire); err != nil {
		return nil, err
	}
	if len(wire.Data) != wire.Rows*wire.Cols {
		return nil, fmt.Errorf("pipeline: corrupt dataset: %d values for %dx%d", len(wire.Data), wire.Rows, wire.Cols)
	}
	if len(wire.Meta) != wire.Rows {
		return nil, fmt.Errorf("pipeline: corrupt dataset: %d meta entries for %d rows", len(wire.Meta), wire.Rows)
	}
	return &Dataset{
		FeatureNames: wire.FeatureNames,
		X:            mat.NewFromData(wire.Rows, wire.Cols, wire.Data),
		Meta:         wire.Meta,
	}, nil
}
