package pipeline_test

import (
	"os"
	"path/filepath"
	"testing"

	"prodigy/internal/mat"
	"prodigy/internal/pipeline"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ds, _ := tinyCampaign(t, 8)
	path := filepath.Join(t.TempDir(), "sub", "campaign.dsgz")
	if err := pipeline.SaveDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pipeline.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() || loaded.X.Cols != ds.X.Cols {
		t.Fatalf("shape changed: %dx%d vs %dx%d", loaded.Len(), loaded.X.Cols, ds.Len(), ds.X.Cols)
	}
	if !mat.Equal(loaded.X, ds.X, 0) {
		t.Fatal("feature values changed")
	}
	for i := range ds.Meta {
		if loaded.Meta[i] != ds.Meta[i] {
			t.Fatalf("meta %d changed: %+v vs %+v", i, loaded.Meta[i], ds.Meta[i])
		}
	}
	for i := range ds.FeatureNames {
		if loaded.FeatureNames[i] != ds.FeatureNames[i] {
			t.Fatal("feature names changed")
		}
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	if _, err := pipeline.LoadDataset("/nonexistent/path.dsgz"); err == nil {
		t.Fatal("missing file should error")
	}
	// Not gzip.
	bad := filepath.Join(t.TempDir(), "bad.dsgz")
	if err := os.WriteFile(bad, []byte("not a gzip stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.LoadDataset(bad); err == nil {
		t.Fatal("corrupt file should error")
	}
}
