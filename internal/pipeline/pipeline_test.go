package pipeline_test

import (
	"path/filepath"
	"strings"
	"testing"

	"prodigy/internal/baselines/usad"
	"prodigy/internal/cluster"
	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/mat"
	"prodigy/internal/pipeline"
	"prodigy/internal/vae"
)

// tinyCampaign simulates a handful of jobs (healthy + memleak) and returns
// the builder's dataset plus the store.
func tinyCampaign(t *testing.T, seed int64) (*pipeline.Dataset, *dsos.Store) {
	t.Helper()
	sys := cluster.NewSystem("test", 8, cluster.VoltaNode(), 0)
	store := dsos.NewStore()
	builder := pipeline.NewDatasetBuilder(store)
	builder.Gen.TrimSeconds = 20
	builder.Pipe.Catalog = features.Minimal()

	submit := func(app string, inj hpas.Injector) {
		job, err := sys.Submit(app, 4, 140, seed)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int][2]string{}
		if inj != nil {
			// Inject on half the job's nodes.
			for _, n := range job.Nodes[:2] {
				job.Injectors[n] = inj
				truth[n] = [2]string{inj.Name(), inj.Config()}
			}
		}
		sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.01, Seed: seed + job.ID}, store)
		builder.AddJob(job.ID, app, truth)
		if err := sys.Complete(job.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("lammps", nil)
		submit("nas-cg", nil)
	}
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.1}) // rate scaled up: 140 s run vs the paper's 20-45 min
	submit("nas-cg", hpas.CPUOccupy{Utilization: 1})

	ds, err := builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds, store
}

func TestDatasetAssembly(t *testing.T) {
	ds, _ := tinyCampaign(t, 1)
	// 8 jobs × 4 nodes = 32 samples, of which 2 jobs × 2 nodes = 4 anomalous.
	if ds.Len() != 32 {
		t.Fatalf("dataset has %d samples", ds.Len())
	}
	if got := len(ds.AnomalousIndices()); got != 4 {
		t.Fatalf("%d anomalous samples, want 4", got)
	}
	if got := len(ds.HealthyIndices()); got != 28 {
		t.Fatalf("%d healthy samples", got)
	}
	if len(ds.FeatureNames) != ds.X.Cols {
		t.Fatal("feature name count mismatch")
	}
	// Names are metric-qualified.
	if !strings.Contains(ds.FeatureNames[0], "__") {
		t.Fatalf("feature name %q not metric-qualified", ds.FeatureNames[0])
	}
	// Meta carries app and anomaly info.
	foundLeak := false
	for _, m := range ds.Meta {
		if m.Anomaly == "memleak" {
			foundLeak = true
			if m.Label != pipeline.Anomalous || m.App != "lammps" {
				t.Fatalf("bad meta %+v", m)
			}
		}
	}
	if !foundLeak {
		t.Fatal("memleak samples missing")
	}
}

func TestSubsetAndConcat(t *testing.T) {
	ds, _ := tinyCampaign(t, 2)
	h := ds.Subset(ds.HealthyIndices())
	a := ds.Subset(ds.AnomalousIndices())
	if h.Len()+a.Len() != ds.Len() {
		t.Fatal("subset sizes")
	}
	both, err := pipeline.Concat(h, a)
	if err != nil {
		t.Fatal(err)
	}
	if both.Len() != ds.Len() {
		t.Fatal("concat size")
	}
	// Width mismatch must error.
	bad := &pipeline.Dataset{X: mat.New(1, 3), Meta: make([]pipeline.SampleMeta, 1)}
	if _, err := pipeline.Concat(h, bad); err == nil {
		t.Fatal("expected concat width error")
	}
}

func TestDataGeneratorPreprocessing(t *testing.T) {
	_, store := tinyCampaign(t, 3)
	gen := pipeline.NewDataGenerator(store)
	gen.TrimSeconds = 20
	jobs := store.Jobs()
	tables, err := gen.JobTables(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		// Trim: 140 s run − 2×20 s ≈ ≤100 aligned seconds.
		if tb.Len() > 101 {
			t.Fatalf("trim not applied: %d seconds", tb.Len())
		}
		// Accumulated counters became differences: ctxt::procstat should be
		// small per-second values, not monotone millions.
		ctxt := tb.Column("ctxt::procstat")
		if ctxt == nil {
			t.Fatal("ctxt column missing")
		}
		increasing := 0
		for i := 1; i < len(ctxt); i++ {
			if ctxt[i] > ctxt[i-1] {
				increasing++
			}
		}
		if increasing == len(ctxt)-1 {
			t.Fatal("ctxt still monotone: differencing not applied")
		}
	}
	if _, err := gen.JobTables(9999); err == nil {
		t.Fatal("unknown job should error")
	}
}

func trainProdigyArtifact(t *testing.T, ds *pipeline.Dataset) *pipeline.Artifact {
	t.Helper()
	trainer := &pipeline.ModelTrainer{
		Cfg: pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"},
		NewModel: func(in int) (pipeline.Model, error) {
			cfg := vae.DefaultConfig(in)
			cfg.HiddenDims = []int{24}
			cfg.LatentDim = 4
			cfg.Epochs = 250
			cfg.BatchSize = 16
			cfg.LearningRate = 3e-3
			return pipeline.NewVAEModel(cfg)
		},
	}
	artifact, err := trainer.Train(ds, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	return artifact
}

// TestTrainDetectEndToEnd covers the full §3 flow on simulated telemetry:
// selection, scaling, VAE training, threshold, detection.
func TestTrainDetectEndToEnd(t *testing.T) {
	ds, _ := tinyCampaign(t, 4)
	artifact := trainProdigyArtifact(t, ds)
	if artifact.ModelKind != "vae" {
		t.Fatalf("kind = %s", artifact.ModelKind)
	}
	if len(artifact.Selection.Indices) != 40 {
		t.Fatalf("selected %d features", len(artifact.Selection.Indices))
	}
	det, err := artifact.Detector()
	if err != nil {
		t.Fatal(err)
	}
	preds, scores := det.Predict(ds.X)
	if len(preds) != ds.Len() || len(scores) != ds.Len() {
		t.Fatal("prediction lengths")
	}
	// The injected anomalies must be detected (they are far out of
	// distribution), and most healthy samples must not be flagged.
	labels := ds.Labels()
	tp, fp := 0, 0
	for i, p := range preds {
		if p == 1 && labels[i] == 1 {
			tp++
		}
		if p == 1 && labels[i] == 0 {
			fp++
		}
	}
	if tp < 3 {
		t.Fatalf("only %d/4 anomalies detected", tp)
	}
	if fp > 3 {
		t.Fatalf("%d false positives on 28 healthy", fp)
	}
}

func TestArtifactSaveLoadRoundTrip(t *testing.T) {
	ds, _ := tinyCampaign(t, 5)
	artifact := trainProdigyArtifact(t, ds)
	path := filepath.Join(t.TempDir(), "models", "prodigy.json")
	if err := artifact.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pipeline.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != artifact.Threshold {
		t.Fatal("threshold changed across persistence")
	}
	d1, _ := artifact.Detector()
	d2, _ := loaded.Detector()
	s1 := d1.Scores(ds.X)
	s2 := d2.Scores(ds.X)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("loaded artifact scores differ")
		}
	}
}

func TestTrainerValidation(t *testing.T) {
	ds, _ := tinyCampaign(t, 6)
	trainer := &pipeline.ModelTrainer{Cfg: pipeline.DefaultTrainerConfig()}
	if _, err := trainer.Train(ds, ds, nil); err == nil {
		t.Fatal("nil NewModel should error")
	}
	trainer.NewModel = func(in int) (pipeline.Model, error) {
		return pipeline.NewVAEModel(vae.DefaultConfig(in))
	}
	if _, err := trainer.Train(ds, nil, nil); err == nil {
		t.Fatal("no selection and no selection data should error")
	}
	onlyAnom := ds.Subset(ds.AnomalousIndices())
	if _, err := trainer.Train(onlyAnom, ds, nil); err != nil {
		// Training set with no healthy samples must error — but the error
		// path runs after selection, so construct it directly.
		t.Logf("got expected error: %v", err)
	} else {
		t.Fatal("training on anomalous-only data should error")
	}
}

func TestUSADModelAdapter(t *testing.T) {
	ds, _ := tinyCampaign(t, 7)
	trainer := &pipeline.ModelTrainer{
		Cfg: pipeline.TrainerConfig{TopK: 30, ThresholdPercentile: 99, ScalerKind: "minmax"},
		NewModel: func(in int) (pipeline.Model, error) {
			cfg := usadSmall(in)
			return pipeline.NewUSADModel(cfg)
		},
	}
	artifact, err := trainer.Train(ds, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if artifact.ModelKind != "usad" {
		t.Fatalf("kind = %s", artifact.ModelKind)
	}
	// The live artifact detects normally.
	det, err := artifact.Detector()
	if err != nil {
		t.Fatal(err)
	}
	preds, _ := det.Predict(ds.X)
	if len(preds) != ds.Len() {
		t.Fatal("prediction length")
	}
	// USAD artifacts round-trip through disk like VAE ones.
	path := filepath.Join(t.TempDir(), "usad.json")
	if err := artifact.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := pipeline.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	det2, err := loaded.Detector()
	if err != nil {
		t.Fatal(err)
	}
	s1 := det.Scores(ds.X)
	s2 := det2.Scores(ds.X)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("loaded USAD artifact scores differ")
		}
	}
}

// usadSmall returns a quick USAD config for tests.
func usadSmall(in int) usad.Config {
	cfg := usad.DefaultConfig(in)
	cfg.HiddenSize = 24
	cfg.LatentDim = 4
	cfg.Epochs = 30
	cfg.WarmupEpochs = 20
	cfg.BatchSize = 16
	return cfg
}
