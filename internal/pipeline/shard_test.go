package pipeline_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prodigy/internal/pipeline"
	"prodigy/internal/vae"
)

// vaeTrainer builds a small-VAE trainer with the given data-parallel
// fan-out.
func vaeTrainer(workers int) *pipeline.ModelTrainer {
	return &pipeline.ModelTrainer{
		Cfg: pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax", Workers: workers},
		NewModel: func(in int) (pipeline.Model, error) {
			cfg := vae.DefaultConfig(in)
			cfg.HiddenDims = []int{24}
			cfg.LatentDim = 4
			cfg.Epochs = 40
			cfg.BatchSize = 16
			cfg.LearningRate = 3e-3
			return pipeline.NewVAEModel(cfg)
		},
	}
}

// TestTrainerWorkersBitIdentical pins the Workers threading through the
// pipeline layer: TrainerConfig.Workers reaches the model config, and the
// persisted artifact (weights and threshold alike) is byte-identical for
// any fan-out.
func TestTrainerWorkersBitIdentical(t *testing.T) {
	ds, _ := tinyCampaign(t, 8)
	var ref []byte
	for _, workers := range []int{1, 4} {
		art, err := vaeTrainer(workers).Train(ds, ds, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The knob must actually reach the model.
		restored := &vae.VAE{}
		if err := json.Unmarshal(art.Model, restored); err != nil {
			t.Fatal(err)
		}
		if restored.Cfg.Workers != workers {
			t.Fatalf("model config Workers = %d, want %d", restored.Cfg.Workers, workers)
		}
		// Neutralize the knob itself, then everything else must match bitwise.
		restored.Cfg.Workers = 0
		blob, err := json.Marshal(restored)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = blob
			continue
		}
		if !bytes.Equal(blob, ref) {
			t.Fatalf("Workers=%d: trained model differs from Workers=1", workers)
		}
	}
}

// TestTrainAllMatchesSerial checks the concurrent multi-model fit: the
// artifacts TrainAll returns must equal those of serial Trainer.Train
// calls, in job order.
func TestTrainAllMatchesSerial(t *testing.T) {
	ds, _ := tinyCampaign(t, 9)

	serialVAE, err := vaeTrainer(0).Train(ds, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	serialUSAD, err := (&pipeline.ModelTrainer{
		Cfg: pipeline.TrainerConfig{TopK: 30, ThresholdPercentile: 99, ScalerKind: "minmax"},
		NewModel: func(in int) (pipeline.Model, error) {
			return pipeline.NewUSADModel(usadSmall(in))
		},
	}).Train(ds, ds, nil)
	if err != nil {
		t.Fatal(err)
	}

	arts, err := pipeline.TrainAll([]pipeline.TrainJob{
		{Trainer: vaeTrainer(0), Train: ds, Select: ds},
		{Trainer: &pipeline.ModelTrainer{
			Cfg: pipeline.TrainerConfig{TopK: 30, ThresholdPercentile: 99, ScalerKind: "minmax"},
			NewModel: func(in int) (pipeline.Model, error) {
				return pipeline.NewUSADModel(usadSmall(in))
			},
		}, Train: ds, Select: ds},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("%d artifacts", len(arts))
	}
	if arts[0].ModelKind != "vae" || arts[1].ModelKind != "usad" {
		t.Fatalf("artifact order %s, %s", arts[0].ModelKind, arts[1].ModelKind)
	}
	if !bytes.Equal(arts[0].Model, serialVAE.Model) || arts[0].Threshold != serialVAE.Threshold {
		t.Fatal("concurrent VAE artifact differs from serial")
	}
	if !bytes.Equal(arts[1].Model, serialUSAD.Model) || arts[1].Threshold != serialUSAD.Threshold {
		t.Fatal("concurrent USAD artifact differs from serial")
	}
}

// TestTrainAllPropagatesError checks that a failing job surfaces with its
// index and fails the whole call.
func TestTrainAllPropagatesError(t *testing.T) {
	ds, _ := tinyCampaign(t, 10)
	_, err := pipeline.TrainAll([]pipeline.TrainJob{
		{Trainer: vaeTrainer(0), Train: ds, Select: ds},
		{Trainer: &pipeline.ModelTrainer{}, Train: ds, Select: ds}, // nil NewModel
	})
	if err == nil {
		t.Fatal("expected error from nil NewModel job")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("error %q does not name the failing job", err)
	}
}

// TestBuildDeterministicOrder pins the parallel dataset construction: two
// identically-seeded campaigns must produce samples in the same (job
// registration, component) order with identical vectors, regardless of how
// the preprocessing pool interleaves.
func TestBuildDeterministicOrder(t *testing.T) {
	a, _ := tinyCampaign(t, 11)
	b, _ := tinyCampaign(t, 11)
	if a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Meta {
		if a.Meta[i] != b.Meta[i] {
			t.Fatalf("sample %d meta %+v vs %+v", i, a.Meta[i], b.Meta[i])
		}
	}
	for i, v := range a.X.Data {
		if b.X.Data[i] != v {
			t.Fatalf("X[%d] = %v vs %v", i, b.X.Data[i], v)
		}
	}
}
