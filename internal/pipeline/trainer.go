package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"prodigy/internal/baselines/usad"
	"prodigy/internal/featsel"
	"prodigy/internal/mat"
	"prodigy/internal/obs"
	"prodigy/internal/scale"
	"prodigy/internal/vae"
)

// Scoring telemetry (see DESIGN.md §8): every deployed detector reports
// throughput, batch latency by execution path, fan-out utilization and the
// score distribution itself — the p50/p95/p99 reconstruction error that
// feeds the drift story. The per-batch cost is a few atomic adds, kept
// invisible next to the matrix math it measures.
var (
	scoresTotal = obs.Default.NewCounter("prodigy_scores_total",
		"Samples scored through a deployed AnomalyDetector, all paths.")
	scoreErrors = obs.Default.NewHistogram("prodigy_score_error",
		"Reconstruction-error (anomaly score) distribution of scored samples.", obs.ScoreBuckets)
	batchScoreDur = obs.Default.NewHistogramVec("pipeline_batch_score_seconds",
		"Wall time of one AnomalyDetector.Scores batch, by execution path.", obs.DefBuckets, "path")
	scoreBatches = obs.Default.NewCounterVec("pipeline_score_batches_total",
		"Scored batches, by execution path (serial vs parallel fan-out).", "path")
	busyScoreWorkers = obs.Default.NewGauge("pipeline_score_workers_busy",
		"Scoring workers currently running in the parallel fan-out.")
	anomaliesTotal = obs.Default.NewCounter("prodigy_anomalies_total",
		"Samples whose score crossed the deployed threshold (Predict verdicts).")
)

// instrumentationOn gates the per-batch model-health accounting (cost
// ledger, score sketch, score histograms). It exists for exactly one
// consumer: BenchmarkScoringUninstrumented, which proves the accounting
// costs <5% next to the matrix math. Production never turns it off.
var instrumentationOn atomic.Bool

func init() { instrumentationOn.Store(true) }

// SetInstrumentation toggles per-batch scoring telemetry (benchmarks
// only). Returns the previous setting.
func SetInstrumentation(on bool) bool { return instrumentationOn.Swap(on) }

// InstrumentationEnabled reports whether per-batch scoring telemetry is
// on, so composite models (the ensemble's per-member cost accounting)
// honor the same benchmark-only kill switch.
func InstrumentationEnabled() bool { return instrumentationOn.Load() }

// ScoreQuantiles summarizes the process-wide reconstruction-error
// distribution (p50/p95/p99) — the snapshot /api/health and /api/drift
// report next to the threshold.
func ScoreQuantiles() (p50, p95, p99 float64) {
	return scoreErrors.Quantile(0.50), scoreErrors.Quantile(0.95), scoreErrors.Quantile(0.99)
}

// recordBatch publishes one finished Scores call: throughput counters and
// the process-wide score histogram, plus the detector's own cost-ledger
// entry and distribution sketch (the model-health layer — per-model
// ns/row on /api/health, live-vs-baseline KS on /api/alerts). Everything
// here is atomic adds on pre-resolved series: zero allocations per batch.
func (d *AnomalyDetector) recordBatch(path string, start time.Time, scores []float64) {
	if !instrumentationOn.Load() {
		return
	}
	elapsed := time.Since(start)
	batchScoreDur.With(path).Observe(elapsed.Seconds())
	scoreBatches.With(path).Inc()
	scoresTotal.Add(float64(len(scores)))
	for _, s := range scores {
		scoreErrors.Observe(s)
		d.sketch.Observe(s)
	}
	d.cost.Record(len(scores), elapsed)
}

// Model is the contract detection models implement: fit on healthy feature
// vectors, then score arbitrary vectors (higher = more anomalous).
//
// Scores must be stateless — safe for any number of concurrent callers on
// one shared model — while FitHealthy is single-goroutine and must not run
// concurrently with Scores. Both VAE and USAD satisfy this via nn.Network's
// cache-free Infer path.
type Model interface {
	FitHealthy(x *mat.Matrix) error
	Scores(x *mat.Matrix) []float64
	Kind() string
}

// VAEModel adapts vae.VAE to the Model contract.
type VAEModel struct{ *vae.VAE }

// NewVAEModel constructs an untrained VAE model from a config.
func NewVAEModel(cfg vae.Config) (*VAEModel, error) {
	v, err := vae.New(cfg)
	if err != nil {
		return nil, err
	}
	return &VAEModel{VAE: v}, nil
}

// FitHealthy implements Model.
func (m *VAEModel) FitHealthy(x *mat.Matrix) error {
	_, err := m.Fit(x, nil)
	return err
}

// Kind implements Model.
func (m *VAEModel) Kind() string { return "vae" }

// USADModel adapts usad.USAD to the Model contract.
type USADModel struct{ *usad.USAD }

// NewUSADModel constructs an untrained USAD model from a config.
func NewUSADModel(cfg usad.Config) (*USADModel, error) {
	u, err := usad.New(cfg)
	if err != nil {
		return nil, err
	}
	return &USADModel{USAD: u}, nil
}

// FitHealthy implements Model.
func (m *USADModel) FitHealthy(x *mat.Matrix) error { return m.Fit(x, nil) }

// Kind implements Model.
func (m *USADModel) Kind() string { return "usad" }

// TrainerConfig controls ModelTrainer.
type TrainerConfig struct {
	// TopK features selected by Chi-square (paper: 2000 performs best).
	TopK int
	// ThresholdPercentile of training reconstruction errors (paper: 99).
	ThresholdPercentile float64
	// ScalerKind is "minmax" (paper default), "standard" or "robust".
	ScalerKind string
	// Workers caps the data-parallel fan-out of model training (DESIGN.md
	// §11); 0 leaves the model config's own setting (whose zero value
	// means GOMAXPROCS). Trained weights are bit-identical for every
	// value.
	Workers int
}

// DefaultTrainerConfig returns the paper's settings.
func DefaultTrainerConfig() TrainerConfig {
	return TrainerConfig{TopK: 2000, ThresholdPercentile: 99, ScalerKind: "minmax"}
}

// ModelTrainer mirrors §4.2.1's ModelTrainer: it owns feature selection,
// scaling, model fitting and threshold calibration, and persists everything
// needed for production inference.
type ModelTrainer struct {
	Cfg TrainerConfig
	// NewModel constructs the model for a given (selected) input width.
	NewModel func(inputDim int) (Model, error)
}

// Artifact is the deployable bundle ModelTrainer produces: the trained
// model, scaler, feature selection and metadata (the "model weights, model
// architecture, scaler, metadata" box of Figure 3).
type Artifact struct {
	ModelKind string             `json:"model_kind"`
	Model     json.RawMessage    `json:"model"`
	Scaler    json.RawMessage    `json:"scaler"`
	Selection *featsel.Selection `json:"selection"`
	Threshold float64            `json:"threshold"`
	// Metadata for drift checks at inference time.
	ThresholdPercentile float64  `json:"threshold_percentile"`
	FullFeatureNames    []string `json:"full_feature_names"`
	// CatalogTier and TrimSeconds record the extraction settings the model
	// was trained with so a loaded model reproduces them exactly.
	CatalogTier int `json:"catalog_tier"`
	TrimSeconds int `json:"trim_seconds"`

	model  Model
	scaler scale.Scaler
}

// Train runs the full §3 flow:
//  1. Chi-square feature selection on the selection dataset (which must
//     contain both classes — minimal supervision, §5.4.3);
//  2. min-max scaling fit on the healthy training samples;
//  3. model training on scaled healthy samples only;
//  4. threshold = ThresholdPercentile of training reconstruction errors.
//
// selection may be nil, in which case selectData must be non-nil to compute
// one; pass a precomputed selection to reuse across folds.
func (t *ModelTrainer) Train(train *Dataset, selectData *Dataset, selection *featsel.Selection) (*Artifact, error) {
	if t.NewModel == nil {
		return nil, fmt.Errorf("pipeline: ModelTrainer.NewModel is nil")
	}
	if selection == nil {
		if selectData == nil {
			return nil, fmt.Errorf("pipeline: need either a selection or selection data")
		}
		var err error
		selection, err = featsel.Select(selectData.X, selectData.Labels(), selectData.FeatureNames, t.Cfg.TopK)
		if err != nil {
			return nil, fmt.Errorf("pipeline: feature selection: %w", err)
		}
	}

	healthy := train.Subset(train.HealthyIndices())
	if healthy.Len() == 0 {
		return nil, fmt.Errorf("pipeline: no healthy samples to train on")
	}
	xSel := selection.Apply(healthy.X)

	scaler, err := scale.New(t.Cfg.ScalerKind)
	if err != nil {
		return nil, err
	}
	xScaled := scale.FitTransform(scaler, xSel)

	model, err := t.NewModel(xScaled.Cols)
	if err != nil {
		return nil, err
	}
	// Thread the trainer's Workers knob into the model config regardless
	// of how the NewModel closure was built, so callers set it in one
	// place.
	if t.Cfg.Workers != 0 {
		switch m := model.(type) {
		case *VAEModel:
			m.Cfg.Workers = t.Cfg.Workers
		case *USADModel:
			m.Cfg.Workers = t.Cfg.Workers
		}
	}
	if err := model.FitHealthy(xScaled); err != nil {
		return nil, err
	}

	scores := model.Scores(xScaled)
	threshold := mat.Percentile(scores, t.Cfg.ThresholdPercentile)

	modelBlob, err := json.Marshal(model)
	if err != nil {
		return nil, fmt.Errorf("pipeline: model not serializable: %w", err)
	}
	scalerBlob, err := scale.Marshal(scaler)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		ModelKind:           model.Kind(),
		Model:               modelBlob,
		Scaler:              scalerBlob,
		Selection:           selection,
		Threshold:           threshold,
		ThresholdPercentile: t.Cfg.ThresholdPercentile,
		FullFeatureNames:    train.FeatureNames,
		model:               model,
		scaler:              scaler,
	}, nil
}

// TrainJob pairs a ModelTrainer with its datasets for TrainAll.
type TrainJob struct {
	Trainer *ModelTrainer
	// Train and Select are the datasets passed to Trainer.Train; Selection,
	// when non-nil, is reused instead of recomputing one from Select.
	Train, Select *Dataset
	Selection     *featsel.Selection
}

// TrainAll fits independent models concurrently — e.g. the Prodigy VAE
// and the USAD baseline over the same fold — and returns their artifacts
// in job order. Each ModelTrainer owns its model, sharder and workspaces,
// so the fits share nothing but read-only datasets; per-model results are
// identical to running the jobs serially. The first error wins.
func TrainAll(jobs []TrainJob) ([]*Artifact, error) {
	arts := make([]*Artifact, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j TrainJob) {
			defer wg.Done()
			arts[i], errs[i] = j.Trainer.Train(j.Train, j.Select, j.Selection)
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pipeline: concurrent train job %d: %w", i, err)
		}
	}
	return arts, nil
}

// Detector returns an AnomalyDetector over this artifact. Each detector
// carries a fresh score-distribution sketch (so a model swap naturally
// starts a clean distribution) and the cost-ledger entry for its model
// kind, both resolved here — off the hot path.
func (a *Artifact) Detector() (*AnomalyDetector, error) {
	if a.model == nil || a.scaler == nil {
		if err := a.rehydrate(); err != nil {
			return nil, err
		}
	}
	return &AnomalyDetector{
		artifact: a,
		sketch:   obs.NewSketch(),
		cost:     obs.CostFor(a.ModelKind),
	}, nil
}

// rehydrate reconstructs the live model and scaler from the serialized
// blobs (after loading from disk).
func (a *Artifact) rehydrate() error {
	scaler, err := scale.Unmarshal(a.Scaler)
	if err != nil {
		return err
	}
	a.scaler = scaler
	model, err := DecodeModel(a.ModelKind, a.Model)
	if err != nil {
		return err
	}
	a.model = model
	return nil
}

// DecodeModel reconstructs a fitted model from its serialized form: the
// built-in kinds directly, anything else through the RegisterModelKind
// registry. The ensemble uses this to rehydrate fleet members nested
// inside its own blob.
func DecodeModel(kind string, blob json.RawMessage) (Model, error) {
	switch kind {
	case "vae":
		v := &vae.VAE{}
		if err := json.Unmarshal(blob, v); err != nil {
			return nil, err
		}
		return &VAEModel{VAE: v}, nil
	case "usad":
		u := &usad.USAD{}
		if err := json.Unmarshal(blob, u); err != nil {
			return nil, err
		}
		return &USADModel{USAD: u}, nil
	default:
		m, ok, err := decodeRegistered(kind, blob)
		if err != nil {
			return nil, fmt.Errorf("pipeline: rehydrate %q: %w", kind, err)
		}
		if !ok {
			return nil, fmt.Errorf("pipeline: cannot rehydrate model kind %q", kind)
		}
		return m, nil
	}
}

// LiveModel exposes the in-memory model behind the artifact, rehydrating
// from the serialized blob on first use. The ensemble introspection path
// (server health, budget scheduler wiring) uses this to reach through a
// deployed artifact.
func (a *Artifact) LiveModel() (Model, error) {
	if a.model == nil {
		if err := a.rehydrate(); err != nil {
			return nil, err
		}
	}
	return a.model, nil
}

// LiveScaler exposes the fitted scaler behind the artifact, rehydrating
// on first use — ensemble training reuses a member artifact's scaler as
// the composite's own.
func (a *Artifact) LiveScaler() (scale.Scaler, error) {
	if a.scaler == nil {
		if err := a.rehydrate(); err != nil {
			return nil, err
		}
	}
	return a.scaler, nil
}

// AssembleArtifact bundles an already-fitted model into a deployable
// Artifact — the path for composite models (the cascade ensemble) whose
// training doesn't flow through a single ModelTrainer.Train call. The
// scaler and selection must be the ones the model's fit saw; threshold
// is the caller's calibrated decision boundary in the model's score
// space.
func AssembleArtifact(model Model, scaler scale.Scaler, selection *featsel.Selection,
	threshold, thresholdPercentile float64, fullNames []string) (*Artifact, error) {
	modelBlob, err := json.Marshal(model)
	if err != nil {
		return nil, fmt.Errorf("pipeline: model not serializable: %w", err)
	}
	scalerBlob, err := scale.Marshal(scaler)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		ModelKind:           model.Kind(),
		Model:               modelBlob,
		Scaler:              scalerBlob,
		Selection:           selection,
		Threshold:           threshold,
		ThresholdPercentile: thresholdPercentile,
		FullFeatureNames:    fullNames,
		model:               model,
		scaler:              scaler,
	}, nil
}

// Save writes the artifact to a JSON file, creating parent directories.
func (a *Artifact) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	blob, err := json.Marshal(a)
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// LoadArtifact reads an artifact saved by Save and rehydrates it.
func LoadArtifact(path string) (*Artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	if err := json.Unmarshal(blob, a); err != nil {
		return nil, err
	}
	if err := a.rehydrate(); err != nil {
		return nil, err
	}
	return a, nil
}

// AnomalyDetector mirrors §4.3: given feature vectors in the *full*
// extracted space, it applies the persisted selection and scaler, scores
// with the model, and thresholds. Scores and Predict are safe for
// concurrent use; SetThreshold is a training-time operation and must not
// race with them.
type AnomalyDetector struct {
	artifact *Artifact
	// sketch accumulates this detector's score distribution (fixed
	// memory, lock-free); fresh per Detector() call, so each deployed
	// generation is tracked separately.
	sketch *obs.Sketch
	// cost is the ledger entry for this artifact's model kind.
	cost *obs.CostEntry
}

// Artifact exposes the underlying bundle.
func (d *AnomalyDetector) Artifact() *Artifact { return d.artifact }

// ScoreSketch exposes the live score-distribution sketch — the "live"
// side of the score-shift alert.
func (d *AnomalyDetector) ScoreSketch() *obs.Sketch { return d.sketch }

// parallelScoreMinRows is the batch size below which fanning scoring out
// across workers costs more in goroutine overhead than it recovers.
const parallelScoreMinRows = 128

// Scores returns anomaly scores for full-feature-space vectors. Large
// batches fan out across GOMAXPROCS workers — safe because Model.Scores is
// stateless — so batch throughput scales with cores. Selection and scaling
// run through a pooled workspace, so repeated batch scoring reuses the
// same buffers instead of allocating two full-batch matrices per call.
func (d *AnomalyDetector) Scores(xFull *mat.Matrix) []float64 {
	//lint:ignore detorder observability-only: scoring latency is recorded to the obs registry, never mixed into the scores
	start := time.Now()
	a := d.artifact
	ws := mat.GetWorkspace()
	defer mat.Release(ws)
	x := a.Selection.ApplyInto(ws.Get(xFull.Rows, len(a.Selection.Indices)), xFull)
	a.scaler.TransformInto(x, x)
	workers := runtime.GOMAXPROCS(0)
	if x.Rows < parallelScoreMinRows || workers < 2 {
		out := a.model.Scores(x)
		d.recordBatch("serial", start, out)
		return out
	}
	if workers > x.Rows {
		workers = x.Rows
	}
	out := make([]float64, x.Rows)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * x.Rows / workers
		hi := (w + 1) * x.Rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			busyScoreWorkers.Add(1)
			defer busyScoreWorkers.Add(-1)
			defer wg.Done()
			// Rows are contiguous in the row-major buffer, so a chunk is a
			// zero-copy sub-matrix view.
			chunk := mat.NewFromData(hi-lo, x.Cols, x.Data[lo*x.Cols:hi*x.Cols])
			copy(out[lo:hi], a.model.Scores(chunk))
		}(lo, hi)
	}
	wg.Wait()
	d.recordBatch("parallel", start, out)
	return out
}

// Predict returns binary predictions (1 = anomalous) and the scores.
// Threshold crossings feed prodigy_anomalies_total — the series the
// anomaly-rate-spike alert watches.
func (d *AnomalyDetector) Predict(xFull *mat.Matrix) ([]int, []float64) {
	scores := d.Scores(xFull)
	preds := make([]int, len(scores))
	anomalies := 0
	for i, s := range scores {
		if s > d.artifact.Threshold {
			preds[i] = 1
			anomalies++
		}
	}
	if anomalies > 0 && instrumentationOn.Load() {
		anomaliesTotal.Add(float64(anomalies))
	}
	return preds, scores
}

// Threshold returns the calibrated decision threshold.
func (d *AnomalyDetector) Threshold() float64 { return d.artifact.Threshold }

// SetThreshold overrides the decision threshold (used by the validation
// sweep of §5.4.4).
func (d *AnomalyDetector) SetThreshold(th float64) { d.artifact.Threshold = th }
