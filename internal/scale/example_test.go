package scale_test

import (
	"fmt"

	"prodigy/internal/mat"
	"prodigy/internal/scale"
)

func ExampleMinMax() {
	train := mat.FromRows([][]float64{{0, 100}, {10, 200}})
	s := scale.NewMinMax()
	scaled := scale.FitTransform(s, train)
	fmt.Println(scaled.Row(0), scaled.Row(1))

	// Unseen data extrapolates beyond [0, 1] — how anomalies stay visible.
	test := mat.FromRows([][]float64{{20, 150}})
	fmt.Println(s.Transform(test).Row(0))
	// Output:
	// [0 0] [1 1]
	// [2 0.5]
}
