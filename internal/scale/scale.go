// Package scale provides feature scalers with persistence, mirroring the
// Scaler module of the paper's DataPipeline (§4.2.1): fit on training data,
// transform train and test consistently, and serialize alongside the model
// so production inference reproduces the exact training-time transform.
package scale

import (
	"encoding/json"
	"fmt"
	"sort"

	"prodigy/internal/mat"
)

// Scaler fits column-wise statistics on a training matrix and applies the
// same transform to any matrix with matching width.
type Scaler interface {
	// Fit learns the per-column statistics from x.
	Fit(x *mat.Matrix)
	// Transform returns a scaled copy of x. It panics if called before Fit
	// or if x has a different number of columns than the fitted data.
	Transform(x *mat.Matrix) *mat.Matrix
	// TransformInto is Transform writing into dst (reshaped as needed) —
	// the allocation-free form for scoring hot paths. dst may alias x.
	TransformInto(dst, x *mat.Matrix) *mat.Matrix
	// Kind returns the scaler's registered name ("minmax", "standard", "robust").
	Kind() string
}

// FitTransform fits s on x and returns the transformed copy.
func FitTransform(s Scaler, x *mat.Matrix) *mat.Matrix {
	s.Fit(x)
	return s.Transform(x)
}

// MinMax scales each column to [0, 1] over the fitted range. Constant
// columns map to 0. This is the scaler the paper uses for Prodigy.
type MinMax struct {
	Mins   []float64 `json:"mins"`
	Ranges []float64 `json:"ranges"` // max - min; 0 for constant columns
}

// NewMinMax returns an unfitted MinMax scaler.
func NewMinMax() *MinMax { return &MinMax{} }

// Fit implements Scaler. One column buffer is reused across all columns.
func (s *MinMax) Fit(x *mat.Matrix) {
	s.Mins = make([]float64, x.Cols)
	s.Ranges = make([]float64, x.Cols)
	if x.Rows == 0 {
		return
	}
	col := make([]float64, x.Rows)
	for j := 0; j < x.Cols; j++ {
		x.ColInto(col, j)
		lo, hi := mat.Min(col), mat.Max(col)
		s.Mins[j] = lo
		s.Ranges[j] = hi - lo
	}
}

// Transform implements Scaler. Values outside the fitted range extrapolate
// beyond [0, 1]; anomaly detectors rely on that to see out-of-distribution
// magnitudes.
func (s *MinMax) Transform(x *mat.Matrix) *mat.Matrix {
	return s.TransformInto(&mat.Matrix{}, x)
}

// TransformInto implements Scaler.
func (s *MinMax) TransformInto(dst, x *mat.Matrix) *mat.Matrix {
	s.check(x)
	out := mat.CopyInto(dst, x)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			if s.Ranges[j] > 0 {
				row[j] = (row[j] - s.Mins[j]) / s.Ranges[j]
			} else {
				row[j] = 0
			}
		}
	}
	return out
}

// Kind implements Scaler.
func (s *MinMax) Kind() string { return "minmax" }

func (s *MinMax) check(x *mat.Matrix) {
	if s.Mins == nil {
		panic("scale: Transform before Fit")
	}
	if x.Cols != len(s.Mins) {
		panic(fmt.Sprintf("scale: fitted on %d columns, got %d", len(s.Mins), x.Cols))
	}
}

// Standard scales each column to zero mean and unit variance. Constant
// columns map to 0.
type Standard struct {
	Means []float64 `json:"means"`
	Stds  []float64 `json:"stds"`
}

// NewStandard returns an unfitted Standard scaler.
func NewStandard() *Standard { return &Standard{} }

// Fit implements Scaler. One column buffer is reused across all columns.
func (s *Standard) Fit(x *mat.Matrix) {
	s.Means = make([]float64, x.Cols)
	s.Stds = make([]float64, x.Cols)
	if x.Rows == 0 {
		return
	}
	col := make([]float64, x.Rows)
	for j := 0; j < x.Cols; j++ {
		x.ColInto(col, j)
		s.Means[j] = mat.Mean(col)
		s.Stds[j] = mat.Std(col)
	}
}

// Transform implements Scaler.
func (s *Standard) Transform(x *mat.Matrix) *mat.Matrix {
	return s.TransformInto(&mat.Matrix{}, x)
}

// TransformInto implements Scaler.
func (s *Standard) TransformInto(dst, x *mat.Matrix) *mat.Matrix {
	if s.Means == nil {
		panic("scale: Transform before Fit")
	}
	if x.Cols != len(s.Means) {
		panic(fmt.Sprintf("scale: fitted on %d columns, got %d", len(s.Means), x.Cols))
	}
	out := mat.CopyInto(dst, x)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			if s.Stds[j] > 0 {
				row[j] = (row[j] - s.Means[j]) / s.Stds[j]
			} else {
				row[j] = 0
			}
		}
	}
	return out
}

// Kind implements Scaler.
func (s *Standard) Kind() string { return "standard" }

// Robust scales each column by subtracting the median and dividing by the
// interquartile range, resisting the heavy-tailed metrics HPC telemetry
// produces. Constant-IQR columns map to 0.
type Robust struct {
	Medians []float64 `json:"medians"`
	IQRs    []float64 `json:"iqrs"`
}

// NewRobust returns an unfitted Robust scaler.
func NewRobust() *Robust { return &Robust{} }

// Fit implements Scaler. Each column is copied into a reused buffer and
// sorted once; the median and both quartiles then read the sorted data
// directly instead of re-sorting per percentile.
func (s *Robust) Fit(x *mat.Matrix) {
	s.Medians = make([]float64, x.Cols)
	s.IQRs = make([]float64, x.Cols)
	if x.Rows == 0 {
		return
	}
	col := make([]float64, x.Rows)
	for j := 0; j < x.Cols; j++ {
		x.ColInto(col, j)
		sort.Float64s(col)
		s.Medians[j] = mat.MedianSorted(col)
		s.IQRs[j] = mat.PercentileSorted(col, 75) - mat.PercentileSorted(col, 25)
	}
}

// Transform implements Scaler.
func (s *Robust) Transform(x *mat.Matrix) *mat.Matrix {
	return s.TransformInto(&mat.Matrix{}, x)
}

// TransformInto implements Scaler.
func (s *Robust) TransformInto(dst, x *mat.Matrix) *mat.Matrix {
	if s.Medians == nil {
		panic("scale: Transform before Fit")
	}
	if x.Cols != len(s.Medians) {
		panic(fmt.Sprintf("scale: fitted on %d columns, got %d", len(s.Medians), x.Cols))
	}
	out := mat.CopyInto(dst, x)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			if s.IQRs[j] > 0 {
				row[j] = (row[j] - s.Medians[j]) / s.IQRs[j]
			} else {
				row[j] = 0
			}
		}
	}
	return out
}

// Kind implements Scaler.
func (s *Robust) Kind() string { return "robust" }

// persisted is the on-disk envelope: the kind tag selects the concrete type.
type persisted struct {
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state"`
}

// Marshal serializes any registered scaler to JSON.
func Marshal(s Scaler) ([]byte, error) {
	state, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	return json.Marshal(persisted{Kind: s.Kind(), State: state})
}

// Unmarshal restores a scaler serialized by Marshal.
func Unmarshal(data []byte) (Scaler, error) {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	var s Scaler
	switch p.Kind {
	case "minmax":
		s = &MinMax{}
	case "standard":
		s = &Standard{}
	case "robust":
		s = &Robust{}
	default:
		return nil, fmt.Errorf("scale: unknown scaler kind %q", p.Kind)
	}
	if err := json.Unmarshal(p.State, s); err != nil {
		return nil, err
	}
	return s, nil
}

// New returns an unfitted scaler of the given kind, or an error for an
// unknown kind.
func New(kind string) (Scaler, error) {
	switch kind {
	case "minmax":
		return NewMinMax(), nil
	case "standard":
		return NewStandard(), nil
	case "robust":
		return NewRobust(), nil
	}
	return nil, fmt.Errorf("scale: unknown scaler kind %q", kind)
}
