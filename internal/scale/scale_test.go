package scale

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prodigy/internal/mat"
)

func TestMinMaxBasic(t *testing.T) {
	x := mat.FromRows([][]float64{{0, 10}, {5, 20}, {10, 30}})
	s := NewMinMax()
	out := FitTransform(s, x)
	want := mat.FromRows([][]float64{{0, 0}, {0.5, 0.5}, {1, 1}})
	if !mat.Equal(out, want, 1e-12) {
		t.Fatalf("minmax = %v", out.Data)
	}
	// Original must be untouched.
	if x.At(0, 1) != 10 {
		t.Fatal("Transform mutated input")
	}
}

func TestMinMaxConstantColumn(t *testing.T) {
	x := mat.FromRows([][]float64{{7, 1}, {7, 2}})
	out := FitTransform(NewMinMax(), x)
	if out.At(0, 0) != 0 || out.At(1, 0) != 0 {
		t.Fatalf("constant column should scale to 0: %v", out.Data)
	}
}

func TestMinMaxExtrapolatesOutOfRange(t *testing.T) {
	train := mat.FromRows([][]float64{{0}, {10}})
	s := NewMinMax()
	s.Fit(train)
	test := mat.FromRows([][]float64{{20}, {-10}})
	out := s.Transform(test)
	if out.At(0, 0) != 2 || out.At(1, 0) != -1 {
		t.Fatalf("extrapolation = %v", out.Data)
	}
}

func TestStandardBasic(t *testing.T) {
	x := mat.FromRows([][]float64{{2}, {4}, {4}, {4}, {5}, {5}, {7}, {9}})
	out := FitTransform(NewStandard(), x)
	col := out.Col(0)
	if math.Abs(mat.Mean(col)) > 1e-12 {
		t.Fatalf("mean after standard = %v", mat.Mean(col))
	}
	if math.Abs(mat.Std(col)-1) > 1e-12 {
		t.Fatalf("std after standard = %v", mat.Std(col))
	}
}

func TestRobustBasic(t *testing.T) {
	x := mat.FromRows([][]float64{{1}, {2}, {3}, {4}, {100}})
	out := FitTransform(NewRobust(), x)
	// Median 3 maps to 0.
	if out.At(2, 0) != 0 {
		t.Fatalf("median should map to 0: %v", out.Data)
	}
	// The outlier remains an outlier but is scaled by IQR, not range.
	if out.At(4, 0) < 10 {
		t.Fatalf("outlier = %v", out.At(4, 0))
	}
}

func TestTransformBeforeFitPanics(t *testing.T) {
	for _, s := range []Scaler{NewMinMax(), NewStandard(), NewRobust()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic before Fit", s.Kind())
				}
			}()
			s.Transform(mat.New(1, 1))
		}()
	}
}

func TestTransformWidthMismatchPanics(t *testing.T) {
	s := NewMinMax()
	s.Fit(mat.New(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width mismatch")
		}
	}()
	s.Transform(mat.New(2, 4))
}

func TestPersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.Randn(20, 5, 3, rng)
	for _, kind := range []string{"minmax", "standard", "robust"} {
		s, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		s.Fit(x)
		blob, err := Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Kind() != kind {
			t.Fatalf("kind = %q", restored.Kind())
		}
		test := mat.Randn(7, 5, 3, rng)
		if !mat.Equal(s.Transform(test), restored.Transform(test), 0) {
			t.Fatalf("%s: restored scaler differs", kind)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := New("nope"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := Unmarshal([]byte(`{"kind":"nope","state":{}}`)); err == nil {
		t.Fatal("expected error for unknown persisted kind")
	}
}

// Property: MinMax training-set outputs always lie in [0,1].
func TestQuickMinMaxRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := mat.Randn(2+rng.Intn(30), 1+rng.Intn(8), 100, rng)
		out := FitTransform(NewMinMax(), x)
		for _, v := range out.Data {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling is invertible information-wise — relative order within a
// column is preserved by all three scalers.
func TestQuickOrderPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := mat.Randn(5+rng.Intn(20), 1, 10, rng)
		for _, s := range []Scaler{NewMinMax(), NewStandard(), NewRobust()} {
			out := FitTransform(s, x)
			in := x.Col(0)
			sc := out.Col(0)
			for i := 1; i < len(in); i++ {
				if (in[i] > in[i-1]) != (sc[i] > sc[i-1]) && in[i] != in[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
