package serve

import "time"

// Clock abstracts wall time for the coalescer so the shed/deadline tests
// can drive the flush window deterministically. The zero Config uses the
// real clock.
type Clock interface {
	Now() time.Time
	// NewTimer returns a timer that delivers one tick on its channel after
	// d has elapsed.
	NewTimer(d time.Duration) Timer
}

// Timer is the subset of *time.Timer the coalescer needs.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

type realClock struct{}

func (realClock) Now() time.Time                 { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }
