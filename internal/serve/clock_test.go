package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced Clock for deterministic window and
// deadline tests.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	ft := &fakeTimer{clock: c, at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if !ft.at.After(c.now) {
		ft.ch <- c.now
	} else {
		c.timers = append(c.timers, ft)
	}
	return ft
}

// Advance moves the clock and fires every timer that has come due.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, ft := range c.timers {
		if !ft.at.After(c.now) {
			ft.ch <- c.now
		} else {
			kept = append(kept, ft)
		}
	}
	c.timers = kept
}

// waitTimers blocks until n timers are pending (the coalescer has opened
// a batch and armed its window).
func (c *fakeClock) waitTimers(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		pending := len(c.timers)
		c.mu.Unlock()
		if pending >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending timers (have %d)", n, pending)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

type fakeTimer struct {
	clock *fakeClock
	at    time.Time
	ch    chan time.Time
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ft := range c.timers {
		if ft == t {
			c.timers = append(c.timers[:i], c.timers[i+1:]...)
			return true
		}
	}
	return false
}

// waitStaged blocks until the shard has moved n rows from its queue into
// batches.
func waitStaged(t *testing.T, sh *shard, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sh.staged.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d staged rows (have %d)", n, sh.staged.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFakeClockWindowAndDeadline drives the coalescer on a fake clock:
//
//   - Phase A (healthy): requests staged within the window are flushed
//     when it elapses, each having waited exactly the window — the
//     latency bound.
//   - Phase B (overload): requests stuck past their deadline are shed at
//     the flush boundary with ErrOverloaded instead of being scored late.
//
// Together they pin the shed policy's p99 claim: every *scored* request
// waited at most the window; overload converts would-be tail latency into
// sheds.
func TestFakeClockWindowAndDeadline(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	fc := newFakeClock()
	const (
		window   = 10 * time.Millisecond
		deadline = 25 * time.Millisecond
	)
	tier := NewTier(p, Config{Window: window, Deadline: deadline, Clock: fc})
	defer tier.Stop()
	sh := tier.shards[0]

	type reply struct {
		res *Result
		err error
	}
	submit := func(n int) chan reply {
		ch := make(chan reply, n)
		vecs := randVectorsSeeded(int64(n), n, width)
		for i := 0; i < n; i++ {
			go func(i int) {
				res, err := tier.ScoreBatch(context.Background(), vecs[i:i+1])
				ch <- reply{res, err}
			}(i)
		}
		return ch
	}

	// Phase A: open a batch, join it, let the window elapse.
	chA := submit(1)
	fc.waitTimers(t, 1) // batch open, window armed
	chB := submit(3)
	waitStaged(t, sh, 4)
	fc.Advance(window)
	for i := 0; i < 1; i++ {
		r := <-chA
		if r.err != nil {
			t.Fatalf("phase A request: %v", r.err)
		}
		if r.res.Waited != window {
			t.Fatalf("opener waited %v, want exactly the %v window", r.res.Waited, window)
		}
		if r.res.BatchRows != 4 {
			t.Fatalf("batch carried %d rows, want 4", r.res.BatchRows)
		}
	}
	for i := 0; i < 3; i++ {
		if r := <-chB; r.err != nil {
			t.Fatalf("phase A joiner: %v", r.err)
		} else if r.res.Waited > window {
			t.Fatalf("joiner waited %v > window %v", r.res.Waited, window)
		}
	}

	// Phase B: stage a batch, then stall it past the deadline before the
	// flush — every request must shed, none may be scored late.
	shedBefore := shedTotal.With(shedDeadline).Value()
	chC := submit(1)
	fc.waitTimers(t, 1)
	chD := submit(2)
	waitStaged(t, sh, 7)
	fc.Advance(deadline + window) // blow straight past every deadline
	for i := 0; i < 1; i++ {
		if r := <-chC; !errors.Is(r.err, ErrOverloaded) {
			t.Fatalf("stalled opener returned %v, want ErrOverloaded", r.err)
		}
	}
	for i := 0; i < 2; i++ {
		if r := <-chD; !errors.Is(r.err, ErrOverloaded) {
			t.Fatalf("stalled joiner returned %v, want ErrOverloaded", r.err)
		}
	}
	if got := shedTotal.With(shedDeadline).Value() - shedBefore; got != 3 {
		t.Fatalf("deadline shed counter advanced by %v, want 3", got)
	}

	// Phase C: after shedding, the shard still serves.
	chE := submit(1)
	fc.waitTimers(t, 1)
	waitStaged(t, sh, 8)
	fc.Advance(window)
	if r := <-chE; r.err != nil {
		t.Fatalf("post-shed request: %v", r.err)
	} else if r.res.Waited > window {
		t.Fatalf("post-shed request waited %v > window %v", r.res.Waited, window)
	}
}
