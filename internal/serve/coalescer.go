package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"time"

	"prodigy/internal/core"
	"prodigy/internal/mat"
)

// request is one waiter's stake in a coalesced batch.
type request struct {
	vectors [][]float64
	rows    int
	// deadline is the admission deadline: a request still unflushed past
	// it is shed.
	deadline time.Time
	enqueued time.Time
	// off is the request's first row within the flushed batch.
	off  int
	done chan outcome
}

type outcome struct {
	res *Result
	err error
}

// shard is one replica plus its coalescer: an admission queue bounded in
// rows, and a flusher goroutine that drains it into size- or
// window-bounded batches.
type shard struct {
	tier    *Tier
	id      int
	replica *core.Prodigy
	reqC    chan *request
	// queued counts rows admitted but not yet staged into a batch; it is
	// the admission bound and backs the serve_queue_depth gauge.
	queued atomic.Int64
	// staged counts rows ever moved from the queue into a batch (a test
	// synchronization hook).
	staged atomic.Int64
	// mu guards stopped and orders submissions against close(reqC):
	// senders hold it shared, close holds it exclusive, so no send can
	// race the close.
	mu      sync.RWMutex
	stopped bool
	// batch is flusher-owned scratch, reused across flushes.
	batch []*request
}

// submit admits the vectors into the shard's next batch and blocks until
// the batch flushes, the request is shed, or ctx ends. The row
// reservation against MaxQueue happens before the channel send, and the
// channel's capacity equals MaxQueue rows, so an admitted send never
// blocks — which is what makes close(reqC) under the exclusive lock a
// safe shutdown signal.
func (s *shard) submit(ctx context.Context, vectors [][]float64) (*Result, error) {
	cfg := &s.tier.cfg
	rows := len(vectors)
	if rows == 0 {
		return nil, fmt.Errorf("serve: empty request")
	}
	if rows > cfg.MaxBatch {
		return nil, ErrBatchTooLarge
	}
	if !s.replica.Trained() {
		return nil, ErrUntrained
	}
	width := len(s.replica.FeatureNames())
	for i, v := range vectors {
		if len(v) != width {
			return nil, fmt.Errorf("serve: vector %d has %d features, model expects %d", i, len(v), width)
		}
	}
	now := cfg.Clock.Now()
	deadline := now.Add(cfg.Deadline)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	req := &request{vectors: vectors, rows: rows, deadline: deadline, enqueued: now, done: make(chan outcome, 1)}

	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		shedTotal.With(shedStopped).Inc()
		return nil, ErrStopped
	}
	if q := s.queued.Add(int64(rows)); q > int64(cfg.MaxQueue) {
		s.queued.Add(int64(-rows))
		s.mu.RUnlock()
		shedTotal.With(shedQueueFull).Inc()
		return nil, ErrOverloaded
	}
	queueDepth.Add(float64(rows))
	s.reqC <- req
	s.mu.RUnlock()
	requestsTotal.Inc()

	select {
	case out := <-req.done:
		return out.res, out.err
	case <-ctx.Done():
		// The request is already in the pipeline; the flusher still scores
		// or sheds it and parks the outcome in the buffered done channel.
		return nil, ctx.Err()
	}
}

// close marks the shard stopped and closes the admission channel; the
// flusher drains what was admitted and exits.
func (s *shard) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	close(s.reqC)
}

// run is the shard's flusher: each admitted request either opens a new
// batch or joins the one being collected. The spawner in NewTier owns the
// WaitGroup join.
func (s *shard) run() {
	ws := mat.GetWorkspace()
	defer mat.Release(ws)
	for {
		first, ok := <-s.reqC
		if !ok {
			return
		}
		// A request that overflows the open batch (size bound) carries
		// over to open the next one.
		for first != nil {
			first = s.batchOnce(ws, first)
		}
	}
}

// batchOnce collects one batch starting from first and flushes it. The
// flush rules: the batch closes when the coalescing window elapses
// (latency bound), the staged rows reach MaxBatch (size bound), or the
// admission channel closes (drain). Returns the request that arrived but
// did not fit, if any — it opens the next batch.
func (s *shard) batchOnce(ws *mat.Workspace, first *request) (overflow *request) {
	cfg := &s.tier.cfg
	batch := s.batch[:0]
	rows := 0
	stage := func(r *request) {
		s.queued.Add(int64(-r.rows))
		queueDepth.Add(float64(-r.rows))
		s.staged.Add(int64(r.rows))
		rows += r.rows
		batch = append(batch, r)
	}
	stage(first)
	trigger := flushWindow
	timer := cfg.Clock.NewTimer(cfg.Window)
collect:
	for rows < cfg.MaxBatch {
		select {
		case r, ok := <-s.reqC:
			if !ok {
				trigger = flushDrain
				break collect
			}
			if rows+r.rows > cfg.MaxBatch {
				overflow = r
				trigger = flushSize
				break collect
			}
			stage(r)
		case <-timer.C():
			break collect
		}
	}
	if rows >= cfg.MaxBatch {
		trigger = flushSize
	}
	timer.Stop()
	s.flush(ws, batch, trigger)
	s.batch = batch[:0] // keep the grown capacity for the next batch
	return overflow
}

// flush stages the batch's rows into a pooled workspace buffer, scores
// them in one detector call, and demuxes per-request subslices of the
// output back to the waiters. Deadline-aware shedding happens here, at
// the flush boundary: a request that already waited past its deadline is
// answered ErrOverloaded instead of being scored late, so overload shows
// up as sheds, not as unbounded tail latency.
func (s *shard) flush(ws *mat.Workspace, batch []*request, trigger string) {
	cfg := &s.tier.cfg
	now := cfg.Clock.Now()
	width := len(s.replica.FeatureNames())
	buf := ws.Get(cfg.MaxBatch, width)
	defer ws.Put(buf)
	live, rows := 0, 0
	for _, r := range batch {
		if now.After(r.deadline) {
			shedTotal.With(shedDeadline).Inc()
			r.done <- outcome{err: ErrOverloaded}
			continue
		}
		for i, v := range r.vectors {
			copy(buf.Data[(rows+i)*width:(rows+i+1)*width], v)
		}
		r.off = rows
		rows += r.rows
		batch[live] = r
		live++
	}
	if rows == 0 {
		return
	}
	batchRows.Observe(float64(rows))
	flushTotal.With(trigger).Inc()
	view := mat.NewFromData(rows, width, buf.Data[:rows*width])
	preds, scores, threshold := s.replica.DetectBatch(view)
	gen := s.replica.Generation()
	for _, r := range batch[:live] {
		waited := now.Sub(r.enqueued)
		coalesceWait.Observe(waited.Seconds())
		r.done <- outcome{res: &Result{
			Scores:     scores[r.off : r.off+r.rows],
			Preds:      preds[r.off : r.off+r.rows],
			Threshold:  threshold,
			Generation: gen,
			BatchRows:  rows,
			Waited:     waited,
		}}
	}
}
