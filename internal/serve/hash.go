package serve

// jumpHash is the Lamping–Veach jump consistent hash: it maps key to a
// bucket in [0, n) such that growing n from k to k+1 moves only 1/(k+1)
// of the keyspace — replicas can be added without reshuffling every job's
// affinity.
func jumpHash(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// mix64 is the splitmix64 finalizer: a cheap bijective scramble that
// turns sequential IDs into well-distributed hash keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyForJob returns the consistent-hash key for a job's serving affinity.
func KeyForJob(jobID int64) uint64 { return mix64(uint64(jobID)) }

// KeyForNode returns the consistent-hash key for one (job, component)
// pair — finer-grained sharding for callers that score per node.
func KeyForNode(jobID int64, component int) uint64 {
	return mix64(mix64(uint64(jobID)) ^ uint64(component))
}
