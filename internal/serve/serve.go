// Package serve is the production serving tier between the HTTP API and
// the detection pipeline (ROADMAP item 2, the millions-of-users story):
//
//   - A request coalescer micro-batches concurrent scoring requests into
//     the pipeline's parallel batch path: requests stage their rows into a
//     pooled workspace-backed buffer and are flushed together when the
//     coalescing window elapses (latency bound) or the batch fills (size
//     bound), then each waiter gets its subslice of the batch verdicts
//     back. Scores are bit-identical to per-request scoring — batching
//     changes the schedule, not the arithmetic.
//
//   - A sharded replica tier stamps N core.Prodigy replicas out of one
//     trained artifact and consistent-hashes work across them, so
//     CPU-bound scoring scales across cores without sharing a model
//     snapshot pointer between flushers. Swap rolls a retrained artifact
//     replica by replica — in-flight batches finish on the old snapshot,
//     and per-replica generation numbers expose convergence.
//
//   - Graceful degradation: each shard has a bounded admission queue
//     measured in rows; requests beyond it are shed immediately
//     (ErrOverloaded), and requests that waited past their deadline are
//     shed at the flush boundary instead of being scored late — the tier
//     sheds the request, not the tail latency.
package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prodigy/internal/core"
	"prodigy/internal/ensemble"
	"prodigy/internal/obs"
	"prodigy/internal/pipeline"
)

// Serving-tier telemetry (DESIGN.md §15). Queue depth and the shed
// counter are the overload surface the alert rules watch; the batch-rows
// histogram shows how much coalescing actually happens (all-1s means no
// concurrency, all-4096s means the size bound dominates the window).
var (
	queueDepth = obs.Default.NewGauge("serve_queue_depth",
		"Feature-vector rows admitted to the serving tier and not yet staged into a batch.")
	shedTotal = obs.Default.NewCounterVec("serve_shed_total",
		"Requests shed by the serving tier instead of scored.", "reason")
	requestsTotal = obs.Default.NewCounter("serve_requests_total",
		"Requests admitted to the serving tier.")
	batchRows = obs.Default.NewHistogram("serve_batch_rows",
		"Rows per coalesced batch at flush.", batchRowBuckets)
	flushTotal = obs.Default.NewCounterVec("serve_flush_total",
		"Coalesced batch flushes by what triggered them.", "trigger")
	coalesceWait = obs.Default.NewHistogram("serve_coalesce_wait_seconds",
		"Time a scored request spent queued and coalescing before its batch flushed.", obs.DefBuckets)
	replicaGen = obs.Default.NewGaugeVec("serve_replica_generation",
		"Model deployment generation per serving replica; divergence means a Swap is mid-roll.", "replica")
)

// batchRowBuckets covers 1 row (no coalescing) up to the default size
// bound in powers of two.
var batchRowBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Shed reasons and flush triggers: constants, so the metric label sets
// stay bounded.
const (
	shedQueueFull = "queue_full"
	shedDeadline  = "deadline"
	shedStopped   = "stopped"

	flushWindow = "window"
	flushSize   = "size"
	flushDrain  = "drain"
)

// maxReplicas bounds the replica count (and with it the replica metric
// label set) regardless of configuration.
const maxReplicas = 64

// replicaLabel maps a replica index to its metric label value.
//
//lint:labelsafe replica indices are clamped to [0, maxReplicas) at tier construction
func replicaLabel(i int) string { return strconv.Itoa(i) }

// Errors the tier answers requests with. Both shed variants map to HTTP
// 429 + Retry-After at the API layer.
var (
	// ErrOverloaded is returned for requests shed under overload: the
	// admission queue was full, or the request waited past its deadline.
	ErrOverloaded = errors.New("serve: request shed under overload")
	// ErrStopped is returned for requests arriving after Stop.
	ErrStopped = errors.New("serve: serving tier stopped")
	// ErrBatchTooLarge is returned for a single request carrying more rows
	// than one coalesced batch can hold; callers should split it.
	ErrBatchTooLarge = errors.New("serve: request exceeds the batch size bound")
	// ErrUntrained is returned while no trained model is deployed.
	ErrUntrained = errors.New("serve: no trained model deployed")
)

// Config tunes the serving tier. Zero values fall back to the defaults
// noted per field (DefaultConfig spells them out).
type Config struct {
	// Replicas is the number of detector replicas (shards); clamped to
	// [1, 64]. Default 1.
	Replicas int
	// Window is the coalescing latency bound: the longest a request waits
	// for co-batched company before its batch flushes. Default 2ms.
	Window time.Duration
	// MaxBatch is the size bound in rows per coalesced batch; a full batch
	// flushes immediately. Default 4096.
	MaxBatch int
	// MaxQueue bounds each shard's admission queue in rows; requests
	// beyond it are shed with ErrOverloaded. Default 4×MaxBatch.
	MaxQueue int
	// Deadline is the per-request time budget (admission to flush); a
	// request still waiting past it is shed, not scored. An earlier
	// context deadline tightens it per request. Default 100ms.
	Deadline time.Duration
	// Clock abstracts time for tests; nil uses the real clock.
	Clock Clock
}

// DefaultConfig returns the serving defaults: one replica, a 2ms window,
// 4096-row batches, a 16384-row admission queue and a 100ms deadline.
func DefaultConfig() Config {
	return Config{Replicas: 1, Window: 2 * time.Millisecond, MaxBatch: 4096, Deadline: 100 * time.Millisecond}
}

// withDefaults fills zero fields and clamps bounds.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Replicas <= 0 {
		c.Replicas = d.Replicas
	}
	if c.Replicas > maxReplicas {
		c.Replicas = maxReplicas
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxBatch
	}
	if c.Deadline <= 0 {
		c.Deadline = d.Deadline
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	return c
}

// Result is one request's demuxed share of a coalesced batch. Scores and
// Preds are subslices of the batch's output (the detector allocates fresh
// output per batch, so sharing is safe): demux is a reslice, not a copy.
type Result struct {
	Scores []float64
	// Preds holds 1 for anomalous, 0 for healthy, per row.
	Preds []int
	// Threshold the verdicts were judged against, read from the same model
	// snapshot that scored the batch.
	Threshold float64
	// Generation of the replica's deployed model at flush time.
	Generation uint64
	// BatchRows is how many rows the coalesced batch carried in total —
	// the amortization this request enjoyed.
	BatchRows int
	// Waited is how long the request spent between admission and flush.
	Waited time.Duration
}

// Tier is the coalescing, sharded serving tier over N detector replicas.
// All methods are safe for concurrent use.
type Tier struct {
	cfg    Config
	shards []*shard
	// rr distributes keyless requests round-robin across shards.
	rr       atomic.Uint64
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// NewTier builds the tier over p and starts one flusher goroutine per
// replica. Replica 0 is p itself; the rest are stamped from p's deployed
// artifact (snapshot replication) and share its CoMTE distractor pool. If
// p is untrained, or a replica fails to build, the tier degrades to the
// replicas it has — scoring through an untrained tier sheds with
// ErrUntrained. Stop the tier to release its goroutines.
func NewTier(p *core.Prodigy, cfg Config) *Tier {
	cfg = cfg.withDefaults()
	t := &Tier{cfg: cfg}
	replicas := []*core.Prodigy{p}
	if p.Trained() {
		artifact := p.Artifact()
		pool := p.ExplainPool()
		for i := 1; i < cfg.Replicas; i++ {
			rep, err := core.FromArtifact(artifact, p.Cfg)
			if err != nil {
				obs.Warn("serve: replica build failed, serving with fewer",
					"want", cfg.Replicas, "have", len(replicas), "err", err)
				break
			}
			if pool != nil {
				rep.SetExplainPool(pool)
			}
			replicas = append(replicas, rep)
		}
	}
	for i, rep := range replicas {
		sh := &shard{
			tier:    t,
			id:      i,
			replica: rep,
			reqC:    make(chan *request, cfg.MaxQueue),
		}
		t.shards = append(t.shards, sh)
		replicaGen.With(replicaLabel(i)).Set(float64(rep.Generation()))
		t.wg.Add(1)
		go func(sh *shard) {
			defer t.wg.Done()
			sh.run()
		}(sh)
	}
	return t
}

// Replicas returns how many detector replicas the tier serves with.
func (t *Tier) Replicas() int { return len(t.shards) }

// shardFor consistent-hashes a key to a shard.
func (t *Tier) shardFor(key uint64) *shard {
	return t.shards[jumpHash(key, len(t.shards))]
}

// ScoreBatch coalesces the vectors into the next batch of a round-robin
// shard and returns their demuxed verdicts. It blocks until the batch
// flushes (at most the window plus scoring time) unless the request is
// shed or ctx ends first.
func (t *Tier) ScoreBatch(ctx context.Context, vectors [][]float64) (*Result, error) {
	return t.shards[int(t.rr.Add(1))%len(t.shards)].submit(ctx, vectors)
}

// ScoreBatchKeyed is ScoreBatch pinned to the consistent-hash shard of
// key, for callers that want cache- or job-affinity (see KeyForJob).
func (t *Tier) ScoreBatchKeyed(ctx context.Context, key uint64, vectors [][]float64) (*Result, error) {
	return t.shardFor(key).submit(ctx, vectors)
}

// ReplicaForJob returns the replica that job-affine analyses (dashboard,
// explanation, diagnosis) of the job should run against — the same
// consistent hash as keyed scoring, so one job's reads land on one
// replica.
func (t *Tier) ReplicaForJob(jobID int64) *core.Prodigy {
	return t.shardFor(KeyForJob(jobID)).replica
}

// Swap rolls a retrained artifact across the replicas one at a time —
// generation-numbered snapshot replication without a stop-the-world:
// each replica's swap is a single atomic pointer install, in-flight
// batches finish against the snapshot they loaded, and until the roll
// completes Generations reports the divergence.
func (t *Tier) Swap(artifact *pipeline.Artifact) error {
	for i, sh := range t.shards {
		if err := sh.replica.Swap(artifact); err != nil {
			return fmt.Errorf("serve: swap stalled at replica %d of %d: %w", i, len(t.shards), err)
		}
		replicaGen.With(replicaLabel(i)).Set(float64(sh.replica.Generation()))
	}
	return nil
}

// Generations returns each replica's model deployment generation.
func (t *Tier) Generations() []uint64 {
	out := make([]uint64, len(t.shards))
	for i, sh := range t.shards {
		out[i] = sh.replica.Generation()
	}
	return out
}

// Converged reports whether every replica serves the same model
// generation (no Swap mid-roll).
func (t *Tier) Converged() bool {
	gens := t.Generations()
	for _, g := range gens[1:] {
		if g != gens[0] {
			return false
		}
	}
	return true
}

// QueuedRows returns the rows currently admitted and waiting across all
// shards.
func (t *Tier) QueuedRows() int {
	total := int64(0)
	for _, sh := range t.shards {
		total += sh.queued.Load()
	}
	return int(total)
}

// QueueCapacity returns the total admission-queue capacity in rows
// across all shards — the denominator for queue-pressure fractions
// (the ensemble budget scheduler's load probe pairs it with
// QueuedRows).
func (t *Tier) QueueCapacity() int { return t.cfg.MaxQueue * len(t.shards) }

// ConfigureEnsemble wires the tier's queue-depth signal and the given
// ns/row budget into every deployed cascade ensemble it serves: the
// budget scheduler then sheds fleet members when measured cost blows
// the budget or the admission queue backs past its high-water mark.
// Replicas stamped from one artifact share one live ensemble, so each
// distinct ensemble is configured once. No-op for non-ensemble models;
// returns how many ensembles were configured. Call again after Swap —
// a retrained artifact carries a fresh ensemble.
func (t *Tier) ConfigureEnsemble(budgetNs float64) int {
	seen := make(map[*ensemble.Ensemble]bool)
	for _, sh := range t.shards {
		if !sh.replica.Trained() {
			continue
		}
		ens, ok := ensemble.Of(sh.replica.Artifact())
		if !ok || seen[ens] {
			continue
		}
		seen[ens] = true
		ens.SetBudgetNs(budgetNs)
		ens.SetLoadProbe(func() (queued, capacity int) {
			return t.QueuedRows(), t.QueueCapacity()
		})
	}
	return len(seen)
}

// Stop drains the tier: new submissions are shed with ErrStopped, queued
// requests are flushed and answered, and the flusher goroutines are
// joined. Idempotent.
func (t *Tier) Stop() {
	t.stopOnce.Do(func() {
		for _, sh := range t.shards {
			sh.close()
		}
		t.wg.Wait()
	})
}
