package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prodigy/internal/core"
	"prodigy/internal/mat"
	"prodigy/internal/pipeline"
	"prodigy/internal/vae"
)

// testProdigy trains a small but real pipeline: 96 samples × 24 features,
// a thin VAE, Chi-square selection down to 12 — fast enough for the race
// detector, real enough that scores are nontrivial.
func testProdigy(t testing.TB) *core.Prodigy {
	t.Helper()
	const (
		samples  = 96
		features = 24
	)
	rng := rand.New(rand.NewSource(7))
	names := make([]string, features)
	for i := range names {
		names[i] = fmt.Sprintf("f%02d", i)
	}
	x := mat.New(samples, features)
	meta := make([]pipeline.SampleMeta, samples)
	for i := 0; i < samples; i++ {
		label := pipeline.Healthy
		if i%6 == 5 {
			label = pipeline.Anomalous
		}
		for j := 0; j < features; j++ {
			v := rng.NormFloat64()
			if label == pipeline.Anomalous {
				v += 3
			}
			x.Set(i, j, v)
		}
		meta[i] = pipeline.SampleMeta{JobID: int64(i), Label: label}
	}
	ds := &pipeline.Dataset{FeatureNames: names, X: x, Meta: meta}
	cfg := core.DefaultConfig()
	cfg.VAE = vae.Config{HiddenDims: []int{16}, LatentDim: 4, Activation: "tanh",
		LearningRate: 1e-3, BatchSize: 32, Epochs: 4, Seed: 11}
	cfg.Trainer = pipeline.TrainerConfig{TopK: 12, ThresholdPercentile: 95, ScalerKind: "minmax"}
	p := core.New(cfg)
	if err := p.Fit(ds, ds); err != nil {
		t.Fatalf("fit: %v", err)
	}
	return p
}

// randVectors builds n random full-feature-space vectors.
func randVectors(rng *rand.Rand, n, width int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, width)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// randVectorsSeeded is randVectors with a one-shot source.
func randVectorsSeeded(seed int64, n, width int) [][]float64 {
	return randVectors(rand.New(rand.NewSource(seed)), n, width)
}

// TestCoalescedBitIdentical proves the tentpole determinism claim: scores
// obtained through concurrent coalesced submission are bit-identical to
// per-request direct scoring of the same vectors.
func TestCoalescedBitIdentical(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	rng := rand.New(rand.NewSource(21))
	vecs := randVectors(rng, 200, width)

	tier := NewTier(p, Config{Replicas: 2, Window: 5 * time.Millisecond})
	defer tier.Stop()

	gotScores := make([]float64, len(vecs))
	gotPreds := make([]int, len(vecs))
	batchSizes := make([]int, len(vecs))
	var wg sync.WaitGroup
	errs := make([]error, len(vecs))
	for i := range vecs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := tier.ScoreBatch(context.Background(), vecs[i:i+1])
			if err != nil {
				errs[i] = err
				return
			}
			gotScores[i] = res.Scores[0]
			gotPreds[i] = res.Preds[0]
			batchSizes[i] = res.BatchRows
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for i := range vecs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		preds, scores, threshold := p.DetectBatch(mat.NewFromData(1, width, vecs[i]))
		if gotScores[i] != scores[0] {
			t.Fatalf("request %d: coalesced score %v != direct score %v", i, gotScores[i], scores[0])
		}
		if gotPreds[i] != preds[0] {
			t.Fatalf("request %d: coalesced pred %d != direct pred %d", i, gotPreds[i], preds[0])
		}
		if threshold != p.Threshold() {
			t.Fatalf("threshold drifted during test")
		}
		if batchSizes[i] > 1 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatalf("no request was coalesced with company; the test exercised only trivial batches")
	}
	t.Logf("%d/%d requests rode multi-row batches", coalesced, len(vecs))
}

// TestMultiRowRequestDemux checks that multi-row requests get contiguous,
// correctly demuxed subslices.
func TestMultiRowRequestDemux(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	rng := rand.New(rand.NewSource(5))
	vecs := randVectors(rng, 17, width)

	tier := NewTier(p, Config{})
	defer tier.Stop()
	res, err := tier.ScoreBatch(context.Background(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != len(vecs) || len(res.Preds) != len(vecs) {
		t.Fatalf("demux returned %d scores for %d rows", len(res.Scores), len(vecs))
	}
	x := mat.New(len(vecs), width)
	for i, v := range vecs {
		copy(x.Row(i), v)
	}
	_, want, _ := p.DetectBatch(x)
	for i := range vecs {
		if res.Scores[i] != want[i] {
			t.Fatalf("row %d: got %v want %v", i, res.Scores[i], want[i])
		}
	}
}

// TestSwapDuringFlight hammers the tier with scoring while Swap rolls new
// artifacts across the replicas — the -race companion to the convergence
// claim. Scores must come from exactly one of the deployed generations'
// thresholds (self-consistent snapshot), and the tier must converge after
// the last roll.
func TestSwapDuringFlight(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	artifact := p.Artifact()
	tier := NewTier(p, Config{Replicas: 3, Window: time.Millisecond})
	defer tier.Stop()
	if tier.Replicas() != 3 {
		t.Fatalf("got %d replicas, want 3", tier.Replicas())
	}
	if !tier.Converged() {
		t.Fatalf("fresh tier not converged: %v", tier.Generations())
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				vecs := randVectors(rng, 1+rng.Intn(3), width)
				res, err := tier.ScoreBatchKeyed(context.Background(), rng.Uint64(), vecs)
				if err != nil {
					t.Errorf("score during swap: %v", err)
					return
				}
				if res.Generation == 0 {
					t.Errorf("result carries generation 0")
					return
				}
			}
		}(int64(100 + w))
	}
	for i := 0; i < 5; i++ {
		if err := tier.Swap(artifact); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if !tier.Converged() {
		t.Fatalf("tier did not converge after swaps: %v", tier.Generations())
	}
	gens := tier.Generations()
	// Each replica saw its initial deploy plus 5 swaps.
	if gens[0] < 6 {
		t.Fatalf("generation %d after 5 swaps, want >= 6", gens[0])
	}
}

// TestStopDrainsAndSheds checks shutdown semantics: Stop answers
// everything already admitted, and later submissions shed with
// ErrStopped.
func TestStopDrainsAndSheds(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	rng := rand.New(rand.NewSource(3))
	tier := NewTier(p, Config{Window: 50 * time.Millisecond})

	var wg sync.WaitGroup
	errs := make([]error, 8)
	vecs := randVectors(rng, len(errs), width)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tier.ScoreBatch(context.Background(), vecs[i:i+1])
		}(i)
	}
	// Give the submitters a moment to enqueue, then stop mid-window: the
	// drain path must flush them without waiting out the 50ms timer.
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	tier.Stop()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrStopped) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Errorf("stop took %v; drain should not wait out the window", waited)
	}
	if _, err := tier.ScoreBatch(context.Background(), randVectors(rng, 1, width)); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-stop submit returned %v, want ErrStopped", err)
	}
	tier.Stop() // idempotent
}

// TestQueueFullShed pins the admission contract deterministically: a
// shard whose row reservation is at capacity sheds new work with
// ErrOverloaded (counted as queue_full) instead of blocking, and admits
// again once the backlog drains.
func TestQueueFullShed(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	cfg := Config{Window: time.Millisecond, MaxBatch: 8, MaxQueue: 8}
	tier := NewTier(p, cfg)
	defer tier.Stop()
	sh := tier.shards[0]
	rng := rand.New(rand.NewSource(41))

	// Simulate a backlog the flusher has not staged yet: reserve every row
	// of the queue, exactly what concurrent admissions would have done.
	shedBefore := shedTotal.With(shedQueueFull).Value()
	sh.queued.Add(int64(cfg.MaxQueue))
	if _, err := sh.submit(context.Background(), randVectors(rng, 4, width)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	if got := shedTotal.With(shedQueueFull).Value() - shedBefore; got != 1 {
		t.Fatalf("serve_shed_total{reason=queue_full} rose by %v, want 1", got)
	}

	// A failed admission must release its reservation: the counter is back
	// at the simulated backlog, so draining it re-opens the shard.
	if q := sh.queued.Load(); q != int64(cfg.MaxQueue) {
		t.Fatalf("queued = %d after shed, want %d (reservation leaked)", q, cfg.MaxQueue)
	}
	sh.queued.Add(-int64(cfg.MaxQueue))
	res, err := sh.submit(context.Background(), randVectors(rng, 4, width))
	if err != nil {
		t.Fatalf("drained queue rejects work: %v", err)
	}
	if len(res.Scores) != 4 {
		t.Fatalf("got %d scores, want 4", len(res.Scores))
	}
}

// TestOverloadSmoke drives 32 workers at a tiny queue and checks the tier
// stays live: every request either completes or sheds cleanly, never
// hangs or fails with an unexpected error. Whether sheds occur depends on
// scheduler timing, so the count is logged, not asserted — the
// deterministic admission contract is TestQueueFullShed's job and the
// sustained-overload behavior is pinned by the saturation benchmark.
func TestOverloadSmoke(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	tier := NewTier(p, Config{Window: time.Millisecond, MaxBatch: 8, MaxQueue: 8})
	defer tier.Stop()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, shed int
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				_, err := tier.ScoreBatch(context.Background(), randVectors(rng, 4, width))
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					mu.Unlock()
					t.Errorf("unexpected error: %v", err)
					return
				}
				mu.Unlock()
			}
		}(int64(w))
	}
	wg.Wait()
	if ok == 0 {
		t.Fatalf("no request completed under overload")
	}
	t.Logf("completed=%d shed=%d", ok, shed)
}

// TestErrors covers the synchronous rejections.
func TestErrors(t *testing.T) {
	p := testProdigy(t)
	width := len(p.FeatureNames())
	rng := rand.New(rand.NewSource(9))
	tier := NewTier(p, Config{MaxBatch: 4})
	defer tier.Stop()
	if _, err := tier.ScoreBatch(context.Background(), nil); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := tier.ScoreBatch(context.Background(), randVectors(rng, 5, width)); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized request returned %v, want ErrBatchTooLarge", err)
	}
	if _, err := tier.ScoreBatch(context.Background(), randVectors(rng, 1, width-1)); err == nil {
		t.Error("width-mismatched request accepted")
	}
	untrained := NewTier(core.New(core.DefaultConfig()), Config{})
	defer untrained.Stop()
	if _, err := untrained.ScoreBatch(context.Background(), randVectors(rng, 1, 3)); !errors.Is(err, ErrUntrained) {
		t.Errorf("untrained tier returned %v, want ErrUntrained", err)
	}
}

// TestJumpHashProperties pins the consistent-hash contract: full coverage,
// rough balance, and minimal movement when a replica is added.
func TestJumpHashProperties(t *testing.T) {
	const keys = 10000
	counts := make([]int, 5)
	moved := 0
	for k := 0; k < keys; k++ {
		h5 := jumpHash(KeyForJob(int64(k)), 5)
		h6 := jumpHash(KeyForJob(int64(k)), 6)
		counts[h5]++
		if h5 != h6 {
			if h6 != 5 {
				t.Fatalf("key %d moved %d→%d; jump hash may only move keys to the new bucket", k, h5, h6)
			}
			moved++
		}
	}
	for b, c := range counts {
		if c < keys/10 {
			t.Errorf("bucket %d underloaded: %d/%d", b, c, keys)
		}
	}
	// Growing 5→6 should move about 1/6 of keys.
	if moved < keys/12 || moved > keys/3 {
		t.Errorf("adding a replica moved %d/%d keys, want ≈1/6", moved, keys)
	}
}

// TestReplicaForJobStable pins job affinity: the same job always lands on
// the same replica.
func TestReplicaForJobStable(t *testing.T) {
	p := testProdigy(t)
	tier := NewTier(p, Config{Replicas: 4})
	defer tier.Stop()
	for job := int64(0); job < 50; job++ {
		a, b := tier.ReplicaForJob(job), tier.ReplicaForJob(job)
		if a != b {
			t.Fatalf("job %d routed to two replicas", job)
		}
	}
}
