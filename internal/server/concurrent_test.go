package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"prodigy/internal/drift"
)

// fetchJSON is getJSON for worker goroutines: it returns errors instead of
// calling t.Fatal, which may only run on the test goroutine.
func fetchJSON(url string) (map[string]interface{}, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("GET %s: %v", url, err)
	}
	return out, nil
}

// TestConcurrentRequests hammers the scoring and drift endpoints from many
// goroutines against one shared trained model — the production shape:
// net/http runs each request in its own goroutine. Under -race this is the
// regression test for the forward-pass activation race; it also checks
// every request sees consistent, uncorrupted scores.
func TestConcurrentRequests(t *testing.T) {
	srv, anomJob, _ := deployServer(t)

	// Arm the drift monitor so /api/drift and the Observe path inside
	// /api/jobs/{id}/anomalies are exercised together.
	ref := make([]float64, 64)
	for i := range ref {
		ref[i] = 0.01 + float64(i)*0.001
	}
	mon, err := drift.NewMonitor(ref, 500, drift.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Drift = mon

	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Reference response, fetched before the hammering starts.
	anomaliesURL := fmt.Sprintf("%s/api/jobs/%d/anomalies", ts.URL, anomJob)
	want := getJSON(t, anomaliesURL, 200)
	wantNodes := want["nodes"].([]interface{})

	const goroutines = 24 // ≥16 concurrent scoring requests, plus drift readers
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g%4 == 3 {
					out, err := fetchJSON(ts.URL + "/api/drift")
					if err == nil {
						if _, ok := out["drifted"].(bool); !ok {
							err = fmt.Errorf("drift response malformed: %v", out)
						}
					}
					if err != nil {
						errs <- err
						return
					}
					continue
				}
				out, err := fetchJSON(anomaliesURL)
				if err != nil {
					errs <- err
					return
				}
				nodes := out["nodes"].([]interface{})
				if len(nodes) != len(wantNodes) {
					errs <- fmt.Errorf("got %d nodes, want %d", len(nodes), len(wantNodes))
					return
				}
				for j, n := range nodes {
					got := n.(map[string]interface{})
					ref := wantNodes[j].(map[string]interface{})
					if got["score"] != ref["score"] || got["anomalous"] != ref["anomalous"] {
						errs <- fmt.Errorf("node %d: concurrent response diverged: %v vs %v", j, got, ref)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
