package server

// dashboardHTML is the whole operator dashboard: one document, inline CSS
// and JS, zero external assets (no scripts, stylesheets, fonts or images
// fetched from anywhere). It polls the JSON API on the same origin:
// /api/health for the model snapshot and cost ledger, /api/alerts for
// rule states, and /api/timeseries for the sparkline panels.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Prodigy — model health</title>
<style>
  :root { --bg:#101418; --panel:#1a2028; --ink:#d8dee6; --dim:#7d8894;
          --ok:#3fb57f; --warn:#e0a93e; --bad:#e05d5d; --line:#5aa9e6; }
  body { background:var(--bg); color:var(--ink); margin:0;
         font:14px/1.45 ui-monospace, SFMono-Regular, Menlo, monospace; }
  header { padding:14px 20px; border-bottom:1px solid #2a323c;
           display:flex; gap:18px; align-items:baseline; flex-wrap:wrap; }
  header h1 { font-size:16px; margin:0; font-weight:600; }
  header .stat b { color:var(--ink); } header .stat { color:var(--dim); }
  main { display:grid; grid-template-columns:repeat(auto-fit,minmax(340px,1fr));
         gap:14px; padding:16px 20px; }
  .panel { background:var(--panel); border:1px solid #2a323c; border-radius:6px;
           padding:12px 14px; }
  .panel h2 { font-size:12px; text-transform:uppercase; letter-spacing:.08em;
              color:var(--dim); margin:0 0 8px; }
  .big { font-size:22px; font-weight:600; }
  svg.spark { width:100%; height:56px; display:block; }
  svg.spark polyline { fill:none; stroke:var(--line); stroke-width:1.5; }
  svg.spark .fill { fill:rgba(90,169,230,.15); stroke:none; }
  table { width:100%; border-collapse:collapse; }
  td, th { text-align:left; padding:3px 6px; border-bottom:1px solid #242c36; }
  th { color:var(--dim); font-weight:normal; }
  .state-firing { color:var(--bad); font-weight:600; }
  .state-pending { color:var(--warn); }
  .state-resolved { color:var(--ok); }
  .state-inactive { color:var(--dim); }
  .err { color:var(--bad); }
  footer { color:var(--dim); padding:8px 20px 16px; font-size:12px; }
</style>
</head>
<body>
<header>
  <h1>Prodigy model health</h1>
  <span class="stat">trained <b id="h-trained">–</b></span>
  <span class="stat">generation <b id="h-gen">–</b></span>
  <span class="stat">threshold <b id="h-thr">–</b></span>
  <span class="stat">uptime <b id="h-up">–</b></span>
  <span class="stat" id="h-err"></span>
</header>
<main>
  <div class="panel"><h2>Alerts</h2>
    <div class="big" id="a-firing">–</div>
    <table id="a-table"><tbody></tbody></table>
  </div>
  <div class="panel"><h2>Scoring rate (rows/s)</h2>
    <div class="big" id="s-rate">–</div>
    <svg class="spark" id="spark-rate" viewBox="0 0 300 56" preserveAspectRatio="none"></svg>
  </div>
  <div class="panel"><h2>Score p99 (reconstruction error)</h2>
    <div class="big" id="s-p99">–</div>
    <svg class="spark" id="spark-p99" viewBox="0 0 300 56" preserveAspectRatio="none"></svg>
  </div>
  <div class="panel"><h2>HTTP p99 latency (s)</h2>
    <div class="big" id="s-http">–</div>
    <svg class="spark" id="spark-http" viewBox="0 0 300 56" preserveAspectRatio="none"></svg>
  </div>
  <div class="panel"><h2>Cost ledger</h2>
    <table id="c-table"><tbody><tr><th>model</th><th>rows</th><th>ns/row</th></tr></tbody></table>
  </div>
</main>
<footer>auto-refreshes every 5s · served entirely from this process · see /metrics, /api/alerts, /debug/spans</footer>
<script>
"use strict";
function fmt(v, digits) {
  if (v === null || v === undefined || !isFinite(v)) return "–";
  return v.toPrecision(digits || 3);
}
function spark(id, points) {
  var svg = document.getElementById(id);
  while (svg.firstChild) svg.removeChild(svg.firstChild);
  if (!points || points.length < 2) return;
  var lo = Infinity, hi = -Infinity;
  points.forEach(function (p) { lo = Math.min(lo, p.v); hi = Math.max(hi, p.v); });
  if (hi === lo) { hi = lo + 1; }
  var t0 = points[0].t, t1 = points[points.length - 1].t || t0 + 1;
  var xy = points.map(function (p) {
    var x = 300 * (p.t - t0) / Math.max(1, t1 - t0);
    var y = 52 - 48 * (p.v - lo) / (hi - lo);
    return x.toFixed(1) + "," + y.toFixed(1);
  });
  var ns = "http://www.w3.org/2000/svg";
  var area = document.createElementNS(ns, "polygon");
  area.setAttribute("class", "fill");
  area.setAttribute("points", "0,56 " + xy.join(" ") + " 300,56");
  svg.appendChild(area);
  var line = document.createElementNS(ns, "polyline");
  line.setAttribute("points", xy.join(" "));
  svg.appendChild(line);
}
function lastV(series) {
  if (!series || !series.length) return null;
  var pts = series[0].points;
  if (!pts || !pts.length) return null;
  return pts[pts.length - 1].v;
}
function getJSON(url) {
  return fetch(url).then(function (r) {
    if (!r.ok) throw new Error(url + " → " + r.status);
    return r.json();
  });
}
function refresh() {
  getJSON("/api/health").then(function (h) {
    document.getElementById("h-trained").textContent = h.trained ? "yes" : "no";
    document.getElementById("h-gen").textContent = h.swap_generation;
    document.getElementById("h-thr").textContent = fmt(h.threshold, 4);
    document.getElementById("h-up").textContent = Math.round(h.uptime_seconds) + "s";
    var body = document.querySelector("#c-table tbody");
    body.innerHTML = "<tr><th>model</th><th>rows</th><th>ns/row</th></tr>";
    (h.cost_ledger || []).forEach(function (row) {
      var tr = document.createElement("tr");
      [row.model, row.rows, fmt(row.ns_per_row, 4)].forEach(function (c) {
        var td = document.createElement("td");
        td.textContent = c;
        tr.appendChild(td);
      });
      body.appendChild(tr);
    });
    document.getElementById("h-err").textContent = "";
  }).catch(function (e) {
    document.getElementById("h-err").textContent = String(e);
    document.getElementById("h-err").className = "stat err";
  });
  getJSON("/api/alerts").then(function (a) {
    var el = document.getElementById("a-firing");
    el.textContent = a.firing + " firing";
    el.className = "big " + (a.firing > 0 ? "state-firing" : "state-resolved");
    var body = document.querySelector("#a-table tbody");
    body.innerHTML = "";
    (a.alerts || []).forEach(function (al) {
      var tr = document.createElement("tr");
      var name = document.createElement("td");
      name.textContent = al.rule.name;
      var st = document.createElement("td");
      st.textContent = al.state;
      st.className = "state-" + al.state;
      var val = document.createElement("td");
      val.textContent = al.evaluable ? fmt(al.value, 3) : "–";
      tr.appendChild(name); tr.appendChild(st); tr.appendChild(val);
      body.appendChild(tr);
    });
  }).catch(function () {});
  getJSON("/api/timeseries?name=model_rows_scored_total&agg=rate&window=60s&span=15m")
    .then(function (ts) {
      var pts = (ts.series[0] || {}).points || [];
      // Sum the per-model rate series point-by-point when several models
      // have scored; the first series alone is right for the common case.
      document.getElementById("s-rate").textContent = fmt(lastV(ts.series), 3);
      spark("spark-rate", pts);
    }).catch(function () {});
  getJSON("/api/timeseries?name=prodigy_score_error&agg=quantile&q=0.99&window=120s&span=15m")
    .then(function (ts) {
      document.getElementById("s-p99").textContent = fmt(lastV(ts.series), 3);
      spark("spark-p99", (ts.series[0] || {}).points || []);
    }).catch(function () {});
  getJSON("/api/timeseries?name=http_request_duration_seconds&agg=quantile&q=0.99&window=120s&span=15m")
    .then(function (ts) {
      document.getElementById("s-http").textContent = fmt(lastV(ts.series), 3);
      spark("spark-http", (ts.series[0] || {}).points || []);
    }).catch(function () {});
}
refresh();
setInterval(refresh, 5000);
</script>
</body>
</html>
`
