package server_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"prodigy/internal/cluster"
	"prodigy/internal/comte"
	"prodigy/internal/core"
	"prodigy/internal/diagnose"
	"prodigy/internal/drift"
	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/pipeline"
	"prodigy/internal/server"
	"prodigy/internal/vae"
)

// deployFull builds a server with diagnoser and drift monitor attached.
// The campaign carries two anomaly types so the diagnoser can be fitted.
func deployFull(t *testing.T) (*httptest.Server, int64, int, string) {
	t.Helper()
	sys := cluster.NewSystem("test", 8, cluster.EclipseNode(), 0)
	store := dsos.NewStore()
	builder := pipeline.NewDatasetBuilder(store)
	builder.Gen.TrimSeconds = 20
	builder.Pipe.Catalog = features.Minimal()

	var leakJob int64
	var leakComp int
	submit := func(app string, inj hpas.Injector) {
		job, err := sys.Submit(app, 4, 140, 61)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int][2]string{}
		if inj != nil {
			if inj.Name() == "memleak" {
				leakJob = job.ID
				leakComp = job.Nodes[0]
			}
			for _, n := range job.Nodes[:2] {
				job.Injectors[n] = inj
				truth[n] = [2]string{inj.Name(), inj.Config()}
			}
		}
		sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.005, Seed: 61 + job.ID}, store)
		builder.AddJob(job.ID, app, truth)
		if err := sys.Complete(job.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("lammps", nil)
		submit("sw4", nil)
	}
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.05})
	submit("sw4", hpas.CPUOccupy{Utilization: 1})
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.1})
	submit("sw4", hpas.CPUOccupy{Utilization: 0.8})

	ds, err := builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.VAE = vae.Config{
		HiddenDims: []int{24}, LatentDim: 4, Activation: "tanh",
		LearningRate: 3e-3, BatchSize: 16, Epochs: 250, Beta: 1e-3, ClipNorm: 5, Seed: 1,
	}
	cfg.Trainer = pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"}
	cfg.Explain = comte.Config{MaxMetrics: 8, NumDistractors: 3, Restarts: 3, Seed: 1}
	cfg.Catalog = features.Minimal()
	cfg.TrimSeconds = 20
	p := core.New(cfg)
	if err := p.Fit(ds, nil); err != nil {
		t.Fatal(err)
	}
	p.TuneThreshold(ds)

	diagnoser, err := diagnose.New(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	healthy := ds.Subset(ds.HealthyIndices())
	mon, err := drift.NewMonitor(p.Scores(healthy.X), 200, drift.Config{MaxPValue: 0.01, MaxPSI: 0.25, MinSamples: 5})
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(store, p)
	srv.Diagnoser = diagnoser
	srv.Drift = mon
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	healthyJob := store.Jobs()[0]
	_ = healthyJob
	return ts, leakJob, leakComp, "memleak"
}

func TestDiagnoseEndpoint(t *testing.T) {
	ts, leakJob, leakComp, wantType := deployFull(t)
	out := getJSON(t, fmt.Sprintf("%s/api/jobs/%d/diagnose?component=%d", ts.URL, leakJob, leakComp), 200)
	if out["type"] != wantType {
		t.Fatalf("diagnosis = %v, want %s", out["type"], wantType)
	}
	if out["confidence"].(float64) <= 0.33 {
		t.Fatalf("confidence = %v", out["confidence"])
	}
	votes := out["votes"].(map[string]interface{})
	if len(votes) < 2 {
		t.Fatalf("votes = %v", votes)
	}
}

func TestDiagnoseRejectsHealthyNode(t *testing.T) {
	ts, leakJob, _, _ := deployFull(t)
	// Components 2 and 3 of the leak job are healthy.
	out := getJSON(t, fmt.Sprintf("%s/api/jobs/%d/diagnose?component=3", ts.URL, leakJob),
		http.StatusUnprocessableEntity)
	if out["error"] == nil {
		t.Fatal("expected error payload")
	}
}

func TestDiagnoseMissingComponentParam(t *testing.T) {
	ts, leakJob, _, _ := deployFull(t)
	getJSON(t, fmt.Sprintf("%s/api/jobs/%d/diagnose", ts.URL, leakJob), http.StatusBadRequest)
}

func TestDriftEndpointAccumulates(t *testing.T) {
	ts, leakJob, _, _ := deployFull(t)
	// Before any dashboard queries, the window is empty.
	out := getJSON(t, ts.URL+"/api/drift", 200)
	if out["window"].(float64) != 0 {
		t.Fatalf("window = %v", out["window"])
	}
	// Dashboard queries feed healthy-predicted scores into the monitor.
	getJSON(t, fmt.Sprintf("%s/api/jobs/%d/anomalies", ts.URL, leakJob), 200)
	out = getJSON(t, ts.URL+"/api/drift", 200)
	if out["window"].(float64) == 0 {
		t.Fatal("window should have accumulated healthy scores")
	}
	if out["drifted"] == nil {
		t.Fatal("missing drifted field")
	}
}

func TestDiagnoseAndDriftNotConfigured(t *testing.T) {
	ts, anomJob, _ := deploy(t) // the plain deployment without extras
	getJSON(t, fmt.Sprintf("%s/api/jobs/%d/diagnose?component=0", ts.URL, anomJob), http.StatusNotImplemented)
	getJSON(t, ts.URL+"/api/drift", http.StatusNotImplemented)
}
