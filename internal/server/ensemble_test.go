package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"prodigy/internal/cluster"
	"prodigy/internal/core"
	"prodigy/internal/dsos"
	"prodigy/internal/ensemble"
	"prodigy/internal/features"
	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/pipeline"
	"prodigy/internal/server"
)

// deployEnsembleServer trains the budgeted cascade (iforest pre-filter,
// cheap deterministic fleet) on a small campaign and serves it — the
// harness for the scheduler-under-traffic test.
func deployEnsembleServer(t *testing.T) (*httptest.Server, *core.Prodigy, *pipeline.Dataset) {
	t.Helper()
	sys := cluster.NewSystem("test", 8, cluster.EclipseNode(), 0)
	store := dsos.NewStore()
	builder := pipeline.NewDatasetBuilder(store)
	builder.Gen.TrimSeconds = 20
	builder.Pipe.Catalog = features.Minimal()

	submit := func(app string, inj hpas.Injector) {
		job, err := sys.Submit(app, 4, 140, 21)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int][2]string{}
		if inj != nil {
			for _, n := range job.Nodes[:2] {
				job.Injectors[n] = inj
				truth[n] = [2]string{inj.Name(), inj.Config()}
			}
		}
		sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.01, Seed: 21 + job.ID}, store)
		builder.AddJob(job.ID, app, truth)
		if err := sys.Complete(job.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("lammps", nil)
		submit("sw4", nil)
	}
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.05})

	ds, err := builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Trainer = pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"}
	cfg.Catalog = features.Minimal()
	cfg.TrimSeconds = 20
	p := core.New(cfg)
	eCfg := ensemble.Config{
		Prefilter: "iforest", PassFrac: 0.05, Fusion: ensemble.FusionRank,
		Members: []string{"naive", "kmeans", "lof"}, Seed: 21,
	}
	if err := p.FitEnsemble(ds, nil, eCfg, nil); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(server.New(store, p))
	t.Cleanup(ts.Close)
	return ts, p, ds
}

// postScore submits the first n dataset rows to /api/score and returns
// the HTTP status.
func postScore(t *testing.T, url string, ds *pipeline.Dataset, n int) int {
	t.Helper()
	vectors := make([][]float64, n)
	for i := range vectors {
		vectors[i] = ds.X.Row(i)
	}
	body, err := json.Marshal(map[string]interface{}{"vectors": vectors})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// modelsActiveMetric scrapes ensemble_models_active off /metrics.
func modelsActiveMetric(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^ensemble_models_active ([0-9.]+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("ensemble_models_active not exposed on /metrics")
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return int(v)
}

// TestEnsembleServingShedRestore exercises the ISSUE's acceptance
// scenario end to end: a deployed cascade answers /api/score, a
// starvation budget sheds fleet members one batch at a time down to a
// single survivor (ensemble_models_active tracking each step), scoring
// never stops answering, and lifting the budget restores the fleet.
func TestEnsembleServingShedRestore(t *testing.T) {
	ts, p, ds := deployEnsembleServer(t)

	if got := p.ModelKind(); got != "ensemble" {
		t.Fatalf("ModelKind = %q, want ensemble", got)
	}
	if status := postScore(t, ts.URL, ds, 8); status != http.StatusOK {
		t.Fatalf("score status %d", status)
	}
	if got := modelsActiveMetric(t, ts.URL); got != 3 {
		t.Fatalf("ensemble_models_active = %d before shedding, want 3", got)
	}

	// /api/health exposes the cascade introspection payload.
	health := getJSON(t, ts.URL+"/api/health", http.StatusOK)
	if health["model_kind"] != "ensemble" {
		t.Fatalf("health model_kind = %v", health["model_kind"])
	}
	ensSection, ok := health["ensemble"].(map[string]interface{})
	if !ok {
		t.Fatalf("health has no ensemble section: %v", health)
	}
	if ensSection["prefilter"] != "iforest" {
		t.Fatalf("health ensemble.prefilter = %v", ensSection["prefilter"])
	}

	ens, ok := ensemble.Of(p.Artifact())
	if !ok {
		t.Fatal("deployed artifact carries no ensemble")
	}
	// Starvation budget: every scored batch sheds the most expensive
	// member until one is left; /api/score keeps answering throughout.
	ens.SetBudgetNs(1)
	for i := 0; i < 4; i++ {
		if status := postScore(t, ts.URL, ds, 8); status != http.StatusOK {
			t.Fatalf("score status %d while shedding (round %d)", status, i)
		}
	}
	if got := modelsActiveMetric(t, ts.URL); got != 1 {
		t.Fatalf("ensemble_models_active = %d under starvation budget, want 1", got)
	}
	if members := ens.ActiveMembers(); len(members) != 1 {
		t.Fatalf("active members %v, want one survivor", members)
	}

	// Budget lifted: the next scored batch restores the whole fleet.
	ens.SetBudgetNs(0)
	if status := postScore(t, ts.URL, ds, 8); status != http.StatusOK {
		t.Fatalf("score status %d after budget lift", status)
	}
	if got := modelsActiveMetric(t, ts.URL); got != 3 {
		t.Fatalf("ensemble_models_active = %d after restore, want 3", got)
	}
}
