package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeScoreRequest drives the server's untrusted JSON surface: no
// input may panic the decoder, and every accepted request must satisfy
// the invariants the handler relies on (non-empty rectangular batch
// within the size cap) so matrixFromVectors cannot be made to panic from
// the network.
func FuzzDecodeScoreRequest(f *testing.F) {
	f.Add([]byte(`{"vectors":[[1,2],[3,4]]}`))
	f.Add([]byte(`{"vectors":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"vectors":[[1],[2,3]]}`))
	f.Add([]byte(`{"vectors":[[1]]}{"vectors":[[2]]}`))
	f.Add([]byte(`{"vectors":[[1]],"extra":true}`))
	f.Add([]byte(`{"vectors":[[]]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"vectors":[[1e308,-1e308,0.5]]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeScoreRequest(bytes.NewReader(body))
		if err != nil {
			return
		}
		if len(req.Vectors) == 0 || len(req.Vectors) > maxScoreVectors {
			t.Fatalf("accepted batch of %d vectors", len(req.Vectors))
		}
		width := len(req.Vectors[0])
		if width == 0 {
			t.Fatal("accepted empty vectors")
		}
		for i, v := range req.Vectors {
			if len(v) != width {
				t.Fatalf("accepted ragged batch: vector %d has %d features, want %d", i, len(v), width)
			}
		}
	})
}
