package server

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"prodigy/internal/obs"
)

// HTTP telemetry (DESIGN.md §8). Routes are normalized to their pattern —
// `/api/jobs/17/anomalies` reports as `/api/jobs/{id}/anomalies` — so
// cardinality is bounded by the API surface, not by traffic. Status codes
// collapse to classes ("2xx" … "5xx") for the same reason.
var (
	httpRequests = obs.Default.NewCounterVec("http_requests_total",
		"HTTP requests served, by normalized route and status class.", "route", "class")
	httpErrors = obs.Default.NewCounterVec("http_errors_total",
		"HTTP error responses written, by normalized route and status class.", "route", "class")
	httpDuration = obs.Default.NewHistogramVec("http_request_duration_seconds",
		"HTTP request latency, by normalized route.", obs.DefBuckets, "route")
	httpInFlight = obs.Default.NewGauge("http_in_flight_requests",
		"Requests currently being served.")
)

// apiAnalyses is the closed set of /api/jobs/{id}/<analysis> suffixes a
// route label may take; anything else collapses to "other".
var apiAnalyses = map[string]bool{
	"anomalies": true, "explain": true, "diagnose": true, "metrics": true,
}

// routeLabel maps a request path to its bounded-cardinality pattern.
//
//lint:labelsafe every return value comes from the closed route-pattern set above
func routeLabel(path string) string {
	switch path {
	case "/api/health", "/api/jobs", "/api/drift", "/api/score", "/metrics", "/debug/vars",
		"/api/timeseries", "/api/alerts", "/debug/spans", "/dashboard":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/api/jobs/"); ok {
		analysis := ""
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			analysis = rest[i+1:]
		}
		switch {
		case analysis == "":
			return "/api/jobs/{id}"
		case apiAnalyses[analysis]:
			return "/api/jobs/{id}/" + analysis
		default:
			return "/api/jobs/{id}/other"
		}
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// statusClass collapses a status code to its class label.
//
//lint:labelsafe range is {"1xx".."5xx", "other"} — six values
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// instrument wraps the server's mux with request counting, latency
// histograms, the in-flight gauge and a per-request span.
func instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		httpInFlight.Add(1)
		defer httpInFlight.Add(-1)
		_, span := obs.StartSpan(r.Context(), "http "+route)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		httpDuration.With(route).Observe(time.Since(start).Seconds())
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		httpRequests.With(route, statusClass(rec.status)).Inc()
		span.End()
	})
}
