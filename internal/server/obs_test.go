package server_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	// Linked so the streaming detector's metric families (online_*) are
	// registered and appear on /metrics, as they do in prodigyd.
	_ "prodigy/internal/online"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsExposition asserts /metrics serves valid Prometheus text
// exposition carrying the acceptance-criteria metric families from every
// instrumented layer: HTTP serving, scoring pipeline, model deployment
// and the streaming detector.
func TestMetricsExposition(t *testing.T) {
	ts, anomJob, _ := deploy(t)
	// Drive one dashboard request so HTTP and scoring series exist.
	getJSON(t, fmt.Sprintf("%s/api/jobs/%d/anomalies", ts.URL, anomJob), 200)

	status, body := getBody(t, ts.URL+"/metrics")
	if status != 200 {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{route="/api/jobs/{id}/anomalies",le="+Inf"}`,
		"# TYPE prodigy_scores_total counter",
		"# TYPE prodigy_model_swaps_total counter",
		"# TYPE online_ingest_lag_seconds histogram",
		"# TYPE prodigy_score_error histogram",
		"# TYPE prodigy_model_threshold gauge",
		"# TYPE nn_train_loss gauge",
		"# TYPE span_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Minimal format validity: every non-comment line is `name{...} value`
	// or `name value` (label values may legally contain spaces, so strip
	// the label block before splitting).
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		rest := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Errorf("unbalanced label block in %q", line)
				continue
			}
			rest = line[:i] + line[j+1:]
		}
		if fields := strings.Fields(rest); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestHealthSnapshotMetadata asserts /api/health reports the deployed
// model snapshot, not a bare OK.
func TestHealthSnapshotMetadata(t *testing.T) {
	ts, _, _ := deploy(t)
	health := getJSON(t, ts.URL+"/api/health", 200)
	if health["trained"] != true {
		t.Fatalf("health = %v", health)
	}
	if th := health["threshold"].(float64); th <= 0 {
		t.Fatalf("threshold = %v, want > 0", th)
	}
	if f := health["features"].(float64); f <= 0 {
		t.Fatalf("features = %v, want > 0", f)
	}
	if g := health["swap_generation"].(float64); g < 1 {
		t.Fatalf("swap_generation = %v, want >= 1 after Fit", g)
	}
	if up, ok := health["uptime_seconds"].(float64); !ok || up <= 0 {
		t.Fatalf("uptime_seconds = %v", health["uptime_seconds"])
	}
}

// TestErrorCounterMoves is the regression test for the writeError fix: a
// malformed /api/jobs/{id} request must increment
// http_errors_total{route="/api/jobs/{id}/anomalies",class="4xx"} — errors
// must be distinguishable from silence.
func TestErrorCounterMoves(t *testing.T) {
	ts, _, _ := deploy(t)
	const series = `http_errors_total{route="/api/jobs/{id}/anomalies",class="4xx"}`

	before := counterValue(t, ts.URL, series)
	getJSON(t, ts.URL+"/api/jobs/notanumber/anomalies", 400)
	getJSON(t, ts.URL+"/api/jobs/notanumber/anomalies", 400)
	after := counterValue(t, ts.URL, series)
	if after != before+2 {
		t.Fatalf("%s = %v, want %v", series, after, before+2)
	}

	// 404s on an unknown analysis land on the {id}/other route.
	otherSeries := `http_errors_total{route="/api/jobs/{id}/other",class="4xx"}`
	b := counterValue(t, ts.URL, otherSeries)
	getJSON(t, ts.URL+"/api/jobs/3/bogus", 404)
	if a := counterValue(t, ts.URL, otherSeries); a != b+1 {
		t.Fatalf("%s = %v, want %v", otherSeries, a, b+1)
	}
}

// counterValue scrapes /metrics and returns the value of one series (0 if
// absent — counters are born on first increment).
func counterValue(t *testing.T, baseURL, series string) float64 {
	t.Helper()
	_, body := getBody(t, baseURL+"/metrics")
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(series)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func TestDebugEndpoints(t *testing.T) {
	ts, _, _ := deploy(t)
	if status, body := getBody(t, ts.URL+"/debug/vars"); status != 200 || !strings.Contains(body, "prodigy_metrics") {
		t.Fatalf("/debug/vars status %d, body %.120s", status, body)
	}
	if status, body := getBody(t, ts.URL+"/debug/pprof/"); status != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d, body %.120s", status, body)
	}
}
