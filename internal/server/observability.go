package server

import (
	"net/http"
	"strconv"
	"time"

	"prodigy/internal/obs"
	"prodigy/internal/obs/tsdb"
)

// tsQueryParams are the reserved /api/timeseries query parameters; every
// other parameter is treated as an exact-match label matcher, so
// `?name=pipeline_batch_score_seconds&agg=rate&path=serial` selects the
// serial scoring path.
var tsQueryParams = map[string]bool{
	"name": true, "agg": true, "window": true, "span": true, "q": true, "bound": true,
}

// handleTimeseries serves windowed queries over the in-process tsdb:
//
//	GET /api/timeseries?name=NAME[&agg=rate|delta|avg|min|max|quantile|frac_over]
//	    [&window=60s][&span=15m][&q=0.99][&bound=0.25][&label=value...]
//
// agg defaults to raw points; span bounds how far back results reach;
// window sizes each aggregation step. The response carries one entry per
// matching series (for quantile/frac_over, per label set of the
// underlying histogram).
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	if s.TSDB == nil {
		writeError(w, r, http.StatusNotImplemented, "no timeseries store deployed")
		return
	}
	params := r.URL.Query()
	name := params.Get("name")
	if name == "" {
		writeError(w, r, http.StatusBadRequest, "name query parameter required")
		return
	}
	agg := tsdb.AggRaw
	if a := params.Get("agg"); a != "" {
		var err error
		if agg, err = tsdb.ParseAgg(a); err != nil {
			writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
	}
	window, err := durationParam(params.Get("window"), time.Minute)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid window: %v", err)
		return
	}
	span, err := durationParam(params.Get("span"), 15*time.Minute)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid span: %v", err)
		return
	}
	q := 0.99
	if qs := params.Get("q"); qs != "" {
		if q, err = strconv.ParseFloat(qs, 64); err != nil || q <= 0 || q >= 1 {
			writeError(w, r, http.StatusBadRequest, "q must be a float in (0, 1)")
			return
		}
	}
	var bound float64
	if bs := params.Get("bound"); bs != "" {
		if bound, err = strconv.ParseFloat(bs, 64); err != nil {
			writeError(w, r, http.StatusBadRequest, "invalid bound %q", bs)
			return
		}
	} else if agg == tsdb.AggFracOver {
		writeError(w, r, http.StatusBadRequest, "frac_over requires a bound parameter")
		return
	}
	matchers := map[string]string{}
	for k, vs := range params {
		if !tsQueryParams[k] && len(vs) > 0 {
			matchers[k] = vs[0]
		}
	}

	now := s.TSDB.Now()
	from := now.Add(-span)
	var results []tsdb.Result
	if agg == tsdb.AggRaw {
		results = s.TSDB.Query(name, matchers, from, now)
	} else {
		results = s.TSDB.QueryAgg(tsdb.AggQuery{
			Name: name, Matchers: matchers, Agg: agg, Q: q, Bound: bound, Window: window,
		}, from, now)
	}
	if results == nil {
		results = []tsdb.Result{}
	}
	writeJSON(w, map[string]interface{}{
		"name":    name,
		"agg":     string(agg),
		"from_ms": from.UnixMilli(),
		"to_ms":   now.UnixMilli(),
		"series":  results,
	})
}

// durationParam parses a Go duration string, defaulting when empty and
// rejecting non-positive results.
func durationParam(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, strconv.ErrRange
	}
	return d, nil
}

// handleAlerts reports every configured rule's current state, firing
// first.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.Alerts == nil {
		writeError(w, r, http.StatusNotImplemented, "no alert engine deployed")
		return
	}
	writeJSON(w, map[string]interface{}{
		"firing": s.Alerts.FiringCount(),
		"alerts": s.Alerts.Alerts(),
	})
}

// handleSpans serves the recent-slow-spans ring as JSON — the quick "what
// was slow lately" view that /debug/vars buries inside the expvar dump.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	spans := obs.RecentSlowSpans()
	writeJSON(w, map[string]interface{}{
		"count": len(spans),
		"spans": spans,
	})
}

// handleDashboard serves the self-contained operator dashboard. The page
// is a single HTML document with inline CSS and JS — no external assets —
// so it renders on an air-gapped cluster login node.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashboardHTML))
}
