package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prodigy/internal/core"
	"prodigy/internal/dsos"
	"prodigy/internal/obs"
	"prodigy/internal/obs/alert"
	"prodigy/internal/obs/tsdb"
	"prodigy/internal/server"
)

// obsClock is a mutex-guarded fake clock for driving the tsdb scrape loop
// deterministically from tests.
type obsClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *obsClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *obsClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// obsServer builds a bare server (no trained model) with an isolated
// registry scraped by an injected-clock tsdb store.
func obsServer(t *testing.T) (*server.Server, *obs.Registry, *tsdb.Store, *obsClock) {
	t.Helper()
	reg := obs.NewRegistry()
	clk := &obsClock{t: time.Unix(1700000000, 0)}
	store := tsdb.New(reg, tsdb.Config{Interval: 5 * time.Second, Retention: 64, Now: clk.Now})
	srv := server.New(dsos.NewStore(), core.New(core.DefaultConfig()))
	srv.TSDB = store
	return srv, reg, store, clk
}

func getObs(t *testing.T, srv http.Handler, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.Bytes()
}

func TestTimeseriesEndpoint(t *testing.T) {
	srv, reg, store, clk := obsServer(t)
	ticks := reg.NewCounter("obsviz_ticks_total", "test counter")
	for i := 0; i < 6; i++ {
		ticks.Add(10) // 2/s at 5s scrape spacing
		clk.Advance(5 * time.Second)
		store.ScrapeOnce()
	}

	code, body := getObs(t, srv, "/api/timeseries?name=obsviz_ticks_total")
	if code != http.StatusOK {
		t.Fatalf("raw query: status %d: %s", code, body)
	}
	var resp struct {
		Name   string `json:"name"`
		Agg    string `json:"agg"`
		Series []struct {
			Points []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Agg != "raw" || len(resp.Series) != 1 || len(resp.Series[0].Points) != 6 {
		t.Fatalf("raw query: agg=%q series=%d, want raw/1 with 6 points: %s", resp.Agg, len(resp.Series), body)
	}

	code, body = getObs(t, srv, "/api/timeseries?name=obsviz_ticks_total&agg=rate&window=30s")
	if code != http.StatusOK {
		t.Fatalf("rate query: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	pts := resp.Series[0].Points
	last := pts[len(pts)-1].V
	if last < 1.9 || last > 2.1 {
		t.Fatalf("steady 2/s counter: rate = %v, want ~2", last)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/api/timeseries", http.StatusBadRequest},
		{"/api/timeseries?name=obsviz_ticks_total&agg=bogus", http.StatusBadRequest},
		{"/api/timeseries?name=obsviz_ticks_total&window=nope", http.StatusBadRequest},
		{"/api/timeseries?name=obsviz_ticks_total&agg=quantile&q=2", http.StatusBadRequest},
		{"/api/timeseries?name=obsviz_ticks_total&agg=frac_over", http.StatusBadRequest},
	} {
		if code, body := getObs(t, srv, tc.path); code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.path, code, tc.want, body)
		}
	}
}

func TestTimeseriesLabelMatchers(t *testing.T) {
	srv, reg, store, clk := obsServer(t)
	vec := reg.NewCounterVec("obsviz_labeled_total", "test counter", "path")
	vec.With("serial").Add(5)
	vec.With("parallel").Add(7)
	clk.Advance(5 * time.Second)
	store.ScrapeOnce()

	code, body := getObs(t, srv, "/api/timeseries?name=obsviz_labeled_total&path=serial")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Series []struct {
			Labels map[string]string `json:"labels"`
			Points []struct {
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 1 || resp.Series[0].Labels["path"] != "serial" || resp.Series[0].Points[0].V != 5 {
		t.Fatalf("label matcher did not isolate the serial series: %s", body)
	}
}

func TestTimeseriesNotDeployed(t *testing.T) {
	srv := server.New(dsos.NewStore(), core.New(core.DefaultConfig()))
	if code, _ := getObs(t, srv, "/api/timeseries?name=x"); code != http.StatusNotImplemented {
		t.Fatalf("no tsdb: status %d, want 501", code)
	}
	if code, _ := getObs(t, srv, "/api/alerts"); code != http.StatusNotImplemented {
		t.Fatalf("no alert engine: status %d, want 501", code)
	}
}

func TestAlertsEndpoint(t *testing.T) {
	srv, reg, store, clk := obsServer(t)
	gauge := reg.NewGauge("obsviz_pressure", "test gauge")
	eng := alert.NewEngine(store, nil, nil)
	if err := eng.SetRules([]alert.Rule{{
		Name: "pressure-high", Kind: alert.KindQuery, Metric: "obsviz_pressure", Agg: "max",
		Window: alert.Duration(30 * time.Second), Op: "gt", Threshold: 10,
		Severity: "warn",
	}}); err != nil {
		t.Fatal(err)
	}
	srv.Alerts = eng

	step := func(v float64) {
		gauge.Set(v)
		clk.Advance(5 * time.Second)
		store.ScrapeOnce()
		eng.Eval(clk.Now())
	}
	step(1)
	step(50) // above threshold, For=0 → fires immediately

	code, body := getObs(t, srv, "/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Firing int `json:"firing"`
		Alerts []struct {
			Rule struct {
				Name string `json:"name"`
			} `json:"rule"`
			State string  `json:"state"`
			Value float64 `json:"value"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Firing != 1 || len(resp.Alerts) != 1 || resp.Alerts[0].State != "firing" {
		t.Fatalf("want one firing alert, got %s", body)
	}
	if resp.Alerts[0].Rule.Name != "pressure-high" || resp.Alerts[0].Value != 50 {
		t.Fatalf("alert payload wrong: %s", body)
	}
}

func TestSpansEndpoint(t *testing.T) {
	obs.SetSlowSpanThreshold(0) // retain every span
	defer obs.SetSlowSpanThreshold(100 * time.Millisecond)

	srv := server.New(dsos.NewStore(), core.New(core.DefaultConfig()))
	_, span := obs.StartSpan(context.Background(), "obsviz test span")
	span.End()

	code, body := getObs(t, srv, "/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Count int `json:"count"`
		Spans []struct {
			Name       string `json:"name"`
			DurationNs int64  `json:"duration_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != len(resp.Spans) || resp.Count < 1 {
		t.Fatalf("span ring empty or miscounted: %s", body)
	}
	found := false
	for _, sp := range resp.Spans {
		if sp.Name == "obsviz test span" {
			found = true
		}
	}
	if !found {
		t.Fatalf("test span missing from /debug/spans: %s", body)
	}
}

func TestDashboardSelfContained(t *testing.T) {
	srv := server.New(dsos.NewStore(), core.New(core.DefaultConfig()))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if !strings.Contains(page, "Prodigy model health") {
		t.Fatal("dashboard body missing title")
	}
	// The page must be fully self-contained: no stylesheet links, no
	// script/image/font sources, nothing fetched from another origin. The
	// only absolute URL allowed is the SVG XML namespace identifier, which
	// is never dereferenced.
	for _, banned := range []string{"<link", "src=", "@import", "url("} {
		if strings.Contains(page, banned) {
			t.Errorf("dashboard contains external-asset marker %q", banned)
		}
	}
	stripped := strings.ReplaceAll(page, "http://www.w3.org/2000/svg", "")
	for _, banned := range []string{"http://", "https://"} {
		if strings.Contains(stripped, banned) {
			t.Errorf("dashboard references an absolute URL (%s)", banned)
		}
	}
	// Every API the inline script polls must exist on this server.
	for _, path := range []string{"/api/health", "/api/alerts", "/api/timeseries"} {
		if !strings.Contains(page, fmt.Sprintf("%q", path)) && !strings.Contains(page, path) {
			t.Errorf("dashboard does not poll %s", path)
		}
	}
}
