package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"prodigy/internal/serve"
)

// Request-body limits for /api/score: enough for a full node-day of
// feature vectors, small enough that a hostile client cannot balloon the
// decoder. Vectors beyond the cap are rejected, not truncated.
const (
	maxScoreVectors   = 4096
	maxScoreBodyBytes = 8 << 20
)

// scoreRequest is the POST /api/score body: a batch of feature vectors in
// the deployed model's full extracted-feature space (pair with
// /api/health's features count and feature_names from the artifact).
type scoreRequest struct {
	Vectors [][]float64 `json:"vectors"`
}

// scoreResult is one vector's verdict.
type scoreResult struct {
	Score     float64 `json:"score"`
	Anomalous bool    `json:"anomalous"`
}

// decodeScoreRequest parses and validates a score request body. It is the
// server's untrusted-input JSON surface, deliberately split from the
// handler so the fuzz target drives exactly what the network delivers:
// unknown fields rejected, trailing data rejected, empty or ragged vector
// batches rejected, batch size capped.
func decodeScoreRequest(r io.Reader) (*scoreRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req scoreRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, errors.New("trailing data after request object")
	}
	if len(req.Vectors) == 0 {
		return nil, errors.New("vectors must contain at least one vector")
	}
	if len(req.Vectors) > maxScoreVectors {
		return nil, fmt.Errorf("too many vectors: %d > %d", len(req.Vectors), maxScoreVectors)
	}
	width := len(req.Vectors[0])
	if width == 0 {
		return nil, errors.New("vectors must not be empty")
	}
	for i, v := range req.Vectors {
		if len(v) != width {
			return nil, fmt.Errorf("vector %d has %d features, vector 0 has %d", i, len(v), width)
		}
	}
	return &req, nil
}

// handleScore scores a batch of raw feature vectors: POST {"vectors":
// [[...], ...]} returns per-vector scores and verdicts plus the threshold
// they were judged against. Every request routes through the coalescing
// serving tier — single-row requests are micro-batched with their
// concurrent company into one pipeline batch (results are bit-identical
// to solo scoring) — and overload answers 429 with Retry-After instead
// of queueing without bound.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST a JSON body to /api/score")
		return
	}
	if s.Tier == nil || s.Prodigy == nil || !s.Prodigy.Trained() {
		writeError(w, r, http.StatusServiceUnavailable, "no trained model deployed")
		return
	}
	req, err := decodeScoreRequest(http.MaxBytesReader(w, r.Body, maxScoreBodyBytes))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad score request: %v", err)
		return
	}
	want := len(s.Prodigy.FeatureNames())
	if got := len(req.Vectors[0]); got != want {
		writeError(w, r, http.StatusBadRequest,
			"vectors have %d features, deployed model expects %d", got, want)
		return
	}
	res, err := s.Tier.ScoreBatch(r.Context(), req.Vectors)
	if err != nil {
		switch {
		case errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrStopped):
			// Shed, not failed: the client should back off and retry.
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, serve.ErrBatchTooLarge):
			writeError(w, r, http.StatusBadRequest, "%v; split the batch", err)
		case r.Context().Err() != nil:
			// The client went away while the request waited.
			writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, r, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	results := make([]scoreResult, len(res.Scores))
	for i := range res.Scores {
		results[i] = scoreResult{Score: res.Scores[i], Anomalous: res.Preds[i] == 1}
	}
	writeJSON(w, map[string]interface{}{
		"threshold": res.Threshold,
		"results":   results,
	})
}
