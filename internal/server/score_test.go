package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", url, err)
	}
	return resp, out
}

func TestScoreEndpoint(t *testing.T) {
	ts, _, _ := deploy(t)

	// Feature width comes from the deployed artifact, as a client would
	// learn it from /api/health.
	health := getJSON(t, ts.URL+"/api/health", http.StatusOK)
	features := int(health["features"].(float64))
	if features == 0 {
		t.Fatal("health reports 0 features")
	}

	zeros := strings.TrimSuffix(strings.Repeat("0,", features), ",")
	body := fmt.Sprintf(`{"vectors":[[%s],[%s]]}`, zeros, zeros)
	resp, out := postJSON(t, ts.URL+"/api/score", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d: %v", resp.StatusCode, out)
	}
	results, ok := out["results"].([]interface{})
	if !ok || len(results) != 2 {
		t.Fatalf("want 2 results, got %v", out["results"])
	}
	if _, ok := out["threshold"].(float64); !ok {
		t.Fatalf("threshold missing: %v", out)
	}
	for i, r := range results {
		entry := r.(map[string]interface{})
		if _, ok := entry["score"].(float64); !ok {
			t.Fatalf("result %d has no score: %v", i, entry)
		}
		if _, ok := entry["anomalous"].(bool); !ok {
			t.Fatalf("result %d has no verdict: %v", i, entry)
		}
	}

	// Error paths: wrong method, malformed JSON, ragged batch, wrong width.
	getResp, err := http.Get(ts.URL + "/api/score")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/score: status %d, want 405", getResp.StatusCode)
	}
	for _, bad := range []string{
		`{"vectors":`,
		`{"vectors":[]}`,
		`{"vectors":[[1],[1,2]]}`,
		`{"vectors":[[1,2,3]]}`, // wrong width (unless the model has 3 features)
	} {
		resp, _ := postJSON(t, ts.URL+"/api/score", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestScoreShedReturns429 pins the degradation contract of the serving
// tier at the HTTP layer: a shed scoring request answers 429 with a
// Retry-After hint, not a generic 500. A stopped tier sheds everything,
// which makes the shed path deterministic to exercise.
func TestScoreShedReturns429(t *testing.T) {
	srv, _, _ := deployServer(t)
	srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	width := len(srv.Prodigy.FeatureNames())
	zeros := strings.TrimSuffix(strings.Repeat("0,", width), ",")
	resp, out := postJSON(t, ts.URL+"/api/score", fmt.Sprintf(`{"vectors":[[%s]]}`, zeros))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed score status %d, want 429 (%v)", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response carries no Retry-After header")
	}

	// Non-scoring endpoints keep working after Close.
	health := getJSON(t, ts.URL+"/api/health", http.StatusOK)
	if health["trained"] != true {
		t.Fatalf("health degraded after Close: %v", health)
	}
	sv, ok := health["serve"].(map[string]interface{})
	if !ok {
		t.Fatalf("health carries no serve section: %v", health)
	}
	if sv["converged"] != true {
		t.Fatalf("single-replica tier not converged: %v", sv)
	}
}
