// Package server implements the deployment pipeline's user-facing service
// (paper §4, Figures 2 and 4): the role the Grafana → Apache → Django
// stack plays on the production system. A user supplies a job ID and
// selects an analysis; the server queries the DSOS store, runs the
// requested Python-module equivalent (anomaly detection, raw metrics,
// CoMTE explanations) and returns JSON the dashboard renders.
//
// Endpoints:
//
//	GET /api/health                      — model and store status
//	GET /api/jobs                        — ingested job IDs
//	GET /api/jobs/{id}/anomalies         — per-node anomaly predictions
//	GET /api/jobs/{id}/explain?component=N — CoMTE explanation for a node
//	GET /api/jobs/{id}/metrics?component=N&metric=MemFree::meminfo — raw series
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"prodigy/internal/core"
	"prodigy/internal/diagnose"
	"prodigy/internal/drift"
	"prodigy/internal/dsos"
	"prodigy/internal/ensemble"
	"prodigy/internal/ldms"
	"prodigy/internal/obs"
	"prodigy/internal/obs/alert"
	"prodigy/internal/obs/tsdb"
	"prodigy/internal/pipeline"
	"prodigy/internal/serve"
	"prodigy/internal/timeseries"
)

// Server serves the analysis dashboard API. Its handlers are safe for
// concurrent use — net/http serves each request in its own goroutine, and
// every scoring path goes through core.Prodigy's stateless read paths;
// only the drift monitor needs the server's own mutex.
type Server struct {
	Store   *dsos.Store
	Prodigy *core.Prodigy
	// Diagnoser, when set, enables /api/jobs/{id}/diagnose — anomaly-type
	// triage of flagged nodes.
	Diagnoser *diagnose.Classifier
	// Drift, when set, accumulates healthy-predicted scores from the
	// anomaly dashboard and serves /api/drift — the model-staleness check.
	Drift *drift.Monitor
	// TSDB, when set, serves /api/timeseries and backs /dashboard — the
	// in-process metric history (windowed rates, quantiles-over-time).
	TSDB *tsdb.Store
	// Alerts, when set, serves /api/alerts — the rule engine's current
	// firing/pending/resolved states.
	Alerts *alert.Engine
	// Tier is the coalescing serving tier every scoring request routes
	// through (see internal/serve): /api/score submissions are
	// micro-batched into it, and the job-affine analyses pick their
	// replica from it. New constructs one automatically; Close stops it.
	Tier *serve.Tier

	mu      sync.Mutex // guards Drift observations
	mux     *http.ServeMux
	handler http.Handler // mux wrapped with instrumentation middleware
}

// New wires a server over a telemetry store and a trained Prodigy. Beyond
// the dashboard API it mounts the self-monitoring surface: /metrics
// (Prometheus text exposition), /debug/vars (expvar snapshot including
// the slow-span ring) and /debug/pprof (the stdlib profiler, for
// profiling the scoring hot paths under live traffic).
func New(store *dsos.Store, p *core.Prodigy) *Server {
	var tier *serve.Tier
	if p != nil {
		tier = serve.NewTier(p, serve.DefaultConfig())
	}
	return NewWithTier(store, p, tier)
}

// NewWithTier is New with a caller-configured serving tier (replica
// count, coalescing window, queue bound — see serve.Config). The server
// takes ownership: Close stops it.
func NewWithTier(store *dsos.Store, p *core.Prodigy, tier *serve.Tier) *Server {
	s := &Server{Store: store, Prodigy: p, Tier: tier, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/health", s.handleHealth)
	s.mux.HandleFunc("/api/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/jobs/", s.handleJob)
	s.mux.HandleFunc("/api/drift", s.handleDrift)
	s.mux.HandleFunc("/api/score", s.handleScore)
	s.mux.HandleFunc("/api/timeseries", s.handleTimeseries)
	s.mux.HandleFunc("/api/alerts", s.handleAlerts)
	s.mux.HandleFunc("/debug/spans", s.handleSpans)
	s.mux.HandleFunc("/dashboard", s.handleDashboard)
	obs.PublishExpvar()
	s.mux.Handle("/metrics", obs.Handler())
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.handler = instrument(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close stops the serving tier, draining queued scoring requests and
// joining its flusher goroutines. The non-scoring endpoints keep working;
// scoring requests after Close are shed with 429.
func (s *Server) Close() {
	if s.Tier != nil {
		s.Tier.Stop()
	}
}

// prodigyFor returns the detector replica job-affine analyses should use:
// the tier's consistent-hash pick when a tier is mounted, the bare
// Prodigy otherwise.
func (s *Server) prodigyFor(jobID int64) *core.Prodigy {
	if s.Tier != nil {
		return s.Tier.ReplicaForJob(jobID)
	}
	return s.Prodigy
}

// writeJSON writes v with a 200 status.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError writes a JSON error payload, counts it under
// http_errors_total{route,class} so 4xx/5xx are distinguishable from
// silence, and routes it through the leveled logger (client errors at
// debug — they are the caller's problem — server errors at error).
func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	route := routeLabel(r.URL.Path)
	class := statusClass(status)
	httpErrors.With(route, class).Inc()
	if status >= 500 {
		obs.Error("request failed", "route", route, "path", r.URL.Path, "status", status, "err", msg)
	} else {
		obs.Debug("request rejected", "route", route, "path", r.URL.Path, "status", status, "err", msg)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// handleHealth reports model snapshot metadata next to store liveness: the
// decision threshold, feature count, swap generation and process uptime,
// plus the p50/p95/p99 of the reconstruction-error distribution scored so
// far — the same values the obs gauges export on /metrics.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	trained := s.Prodigy != nil && s.Prodigy.Trained()
	var generation uint64
	var featureCount int
	if s.Prodigy != nil {
		generation = s.Prodigy.Generation()
		featureCount = len(s.Prodigy.FeatureNames())
	}
	p50, p95, p99 := pipeline.ScoreQuantiles()
	resp := map[string]interface{}{
		"status":          "ok",
		"trained":         trained,
		"jobs":            len(s.Store.Jobs()),
		"rows":            s.Store.NumRows(),
		"threshold":       s.thresholdOrZero(),
		"features":        featureCount,
		"swap_generation": generation,
		"uptime_seconds":  obs.Uptime().Seconds(),
		"score_p50":       p50,
		"score_p95":       p95,
		"score_p99":       p99,
		"cost_ledger":     obs.LedgerSnapshot(),
	}
	if trained {
		resp["model_kind"] = s.Prodigy.ModelKind()
		// Cascade introspection: when the deployed artifact is the budgeted
		// ensemble, expose the pre-filter margin, live pass fraction, fusion
		// rule, and per-member active/cost status the budget scheduler acts
		// on (ensemble_models_active's JSON twin).
		if ens, ok := ensemble.Of(s.Prodigy.Artifact()); ok {
			resp["ensemble"] = ens.Status()
		}
	}
	if s.Tier != nil {
		// Serving-tier convergence surface: during a Swap roll the
		// generations diverge and converged goes false until every replica
		// serves the new artifact.
		resp["serve"] = map[string]interface{}{
			"replicas":       s.Tier.Replicas(),
			"generations":    s.Tier.Generations(),
			"converged":      s.Tier.Converged(),
			"queued_rows":    s.Tier.QueuedRows(),
			"queue_capacity": s.Tier.QueueCapacity(),
		}
	}
	writeJSON(w, resp)
}

func (s *Server) thresholdOrZero() float64 {
	if s.Prodigy == nil || !s.Prodigy.Trained() {
		return 0
	}
	return s.Prodigy.Threshold()
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{"jobs": s.Store.Jobs()})
}

// handleJob dispatches /api/jobs/{id}/{analysis}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	jobID, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid job id %q", parts[0])
		return
	}
	analysis := ""
	if len(parts) == 2 {
		analysis = parts[1]
	}
	switch analysis {
	case "anomalies":
		s.handleAnomalies(w, r, jobID)
	case "explain":
		s.handleExplain(w, r, jobID)
	case "diagnose":
		s.handleDiagnose(w, r, jobID)
	case "metrics":
		s.handleMetrics(w, r, jobID)
	case "":
		analyses := []string{"anomalies", "explain", "metrics"}
		if s.Diagnoser != nil {
			analyses = append(analyses, "diagnose")
		}
		writeJSON(w, map[string]interface{}{
			"job_id":     jobID,
			"components": s.Store.Components(jobID),
			"analyses":   analyses,
		})
	default:
		writeError(w, r, http.StatusNotFound, "unknown analysis %q", analysis)
	}
}

// handleAnomalies is the anomaly detection dashboard (Figure 4): binary
// prediction per compute node of the job.
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request, jobID int64) {
	if s.Prodigy == nil || !s.Prodigy.Trained() {
		writeError(w, r, http.StatusServiceUnavailable, "no trained model deployed")
		return
	}
	report, err := s.prodigyFor(jobID).AnalyzeJob(s.Store, jobID)
	if err != nil {
		writeError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	if s.Drift != nil {
		// Healthy-predicted scores feed the staleness monitor: a drifting
		// healthy distribution is the retrain signal.
		s.mu.Lock()
		for _, n := range report {
			if !n.Anomalous {
				s.Drift.Observe(n.Score)
			}
		}
		s.mu.Unlock()
	}
	writeJSON(w, map[string]interface{}{"job_id": jobID, "nodes": report})
}

// handleDiagnose classifies the anomaly type of a flagged node.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request, jobID int64) {
	if s.Prodigy == nil || !s.Prodigy.Trained() {
		writeError(w, r, http.StatusServiceUnavailable, "no trained model deployed")
		return
	}
	if s.Diagnoser == nil {
		writeError(w, r, http.StatusNotImplemented, "no diagnoser deployed")
		return
	}
	comp, err := strconv.Atoi(r.URL.Query().Get("component"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "component query parameter required")
		return
	}
	p := s.prodigyFor(jobID)
	vec, err := p.JobNodeVector(s.Store, jobID, comp)
	if err != nil {
		writeError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	anomalous, score := p.DetectVector(vec)
	if !anomalous {
		writeError(w, r, http.StatusUnprocessableEntity,
			"component %d is predicted healthy (score %.5f); nothing to diagnose", comp, score)
		return
	}
	d, err := s.Diagnoser.Classify(vec)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, map[string]interface{}{
		"job_id":       jobID,
		"component_id": comp,
		"score":        score,
		"type":         d.Type,
		"confidence":   d.Confidence,
		"votes":        d.Votes,
	})
}

// handleDrift reports the model-staleness monitor's state.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.Drift == nil {
		writeError(w, r, http.StatusNotImplemented, "no drift monitor deployed")
		return
	}
	s.mu.Lock()
	rep := s.Drift.Check()
	window := s.Drift.WindowSize()
	s.mu.Unlock()
	// The process-wide score distribution gives the drift verdict context:
	// a KS rejection with stable percentiles is noise, one with a moving
	// p95/p99 is the retrain signal.
	p50, p95, p99 := pipeline.ScoreQuantiles()
	writeJSON(w, map[string]interface{}{
		"drifted":   rep.Drifted,
		"ks":        rep.KS,
		"p_value":   rep.PValue,
		"psi":       rep.PSI,
		"window":    window,
		"score_p50": p50,
		"score_p95": p95,
		"score_p99": p99,
	})
}

// handleExplain returns the CoMTE counterfactual for one anomalous node.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, jobID int64) {
	if s.Prodigy == nil || !s.Prodigy.Trained() {
		writeError(w, r, http.StatusServiceUnavailable, "no trained model deployed")
		return
	}
	comp, err := strconv.Atoi(r.URL.Query().Get("component"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "component query parameter required")
		return
	}
	expl, err := s.prodigyFor(jobID).ExplainJobNode(s.Store, jobID, comp)
	if expl == nil {
		if err == nil {
			writeError(w, r, http.StatusUnprocessableEntity,
				"no explanation available for job %d component %d", jobID, comp)
			return
		}
		writeError(w, r, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := map[string]interface{}{
		"job_id":       jobID,
		"component_id": comp,
		"metrics":      expl.Metrics,
		"score_before": expl.ScoreBefore,
		"score_after":  expl.ScoreAfter,
	}
	if err != nil {
		// Larger-than-requested explanations are still returned, flagged.
		resp["note"] = err.Error()
	}
	writeJSON(w, resp)
}

// handleMetrics returns a raw metric series for dashboard plotting (the
// "investigate how specific metrics change over execution" flow of §4.1).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, jobID int64) {
	comp, err := strconv.Atoi(r.URL.Query().Get("component"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "component query parameter required")
		return
	}
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		writeError(w, r, http.StatusBadRequest, "metric query parameter required")
		return
	}
	parts := strings.SplitN(metric, "::", 2)
	if len(parts) != 2 {
		writeError(w, r, http.StatusBadRequest, "metric must be qualified as name::sampler")
		return
	}
	tb, err := s.Store.QuerySampler(jobID, comp, ldms.SamplerName(parts[1]))
	if err != nil {
		writeError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	col := tb.Column(metric)
	if col == nil {
		writeError(w, r, http.StatusNotFound, "metric %q not found", metric)
		return
	}
	// Dropped samples are NaN in storage, which JSON cannot carry; emit
	// null for them, as the production dashboard does.
	values := make([]interface{}, len(col))
	for i, v := range col {
		if timeseries.IsMissing(v) {
			values[i] = nil
		} else {
			values[i] = v
		}
	}
	writeJSON(w, map[string]interface{}{
		"job_id":       jobID,
		"component_id": comp,
		"metric":       metric,
		"timestamps":   tb.Timestamps,
		"values":       values,
	})
}
