package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"prodigy/internal/cluster"
	"prodigy/internal/comte"
	"prodigy/internal/core"
	"prodigy/internal/dsos"
	"prodigy/internal/features"
	"prodigy/internal/hpas"
	"prodigy/internal/ldms"
	"prodigy/internal/pipeline"
	"prodigy/internal/server"
	"prodigy/internal/vae"
)

// deploy builds a small store + trained model + server, returning the
// anomalous job's ID and one of its anomalous components.
func deploy(t *testing.T) (*httptest.Server, int64, int) {
	t.Helper()
	srv, anomJob, anomComp := deployServer(t)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, anomJob, anomComp
}

// deployServer is deploy without the HTTP wrapper, for tests that need to
// configure the server (e.g. arm the drift monitor) before serving.
func deployServer(t *testing.T) (*server.Server, int64, int) {
	t.Helper()
	sys := cluster.NewSystem("test", 8, cluster.EclipseNode(), 0)
	store := dsos.NewStore()
	builder := pipeline.NewDatasetBuilder(store)
	builder.Gen.TrimSeconds = 20
	builder.Pipe.Catalog = features.Minimal()

	var anomJob int64
	var anomComp int
	submit := func(app string, inj hpas.Injector) {
		job, err := sys.Submit(app, 4, 140, 9)
		if err != nil {
			t.Fatal(err)
		}
		truth := map[int][2]string{}
		if inj != nil {
			anomJob = job.ID
			anomComp = job.Nodes[0]
			for _, n := range job.Nodes[:2] {
				job.Injectors[n] = inj
				truth[n] = [2]string{inj.Name(), inj.Config()}
			}
		}
		sys.CollectJob(job, ldms.CollectConfig{DropProb: 0.01, Seed: 9 + job.ID}, store)
		builder.AddJob(job.ID, app, truth)
		if err := sys.Complete(job.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		submit("lammps", nil)
		submit("sw4", nil)
	}
	submit("lammps", hpas.Memleak{SizeMB: 10, Period: 0.05})

	ds, err := builder.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.VAE = vae.Config{
		HiddenDims: []int{24}, LatentDim: 4, Activation: "tanh",
		LearningRate: 3e-3, BatchSize: 16, Epochs: 250, Beta: 1e-3, ClipNorm: 5, Seed: 1,
	}
	cfg.Trainer = pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"}
	cfg.Explain = comte.Config{MaxMetrics: 8, NumDistractors: 3, Restarts: 3, Seed: 1}
	cfg.Catalog = features.Minimal()
	cfg.TrimSeconds = 20
	p := core.New(cfg)
	if err := p.Fit(ds, nil); err != nil {
		t.Fatal(err)
	}
	p.TuneThreshold(ds)

	return server.New(store, p), anomJob, anomComp
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return out
}

func TestHealthAndJobs(t *testing.T) {
	ts, _, _ := deploy(t)
	health := getJSON(t, ts.URL+"/api/health", 200)
	if health["trained"] != true {
		t.Fatalf("health = %v", health)
	}
	if health["jobs"].(float64) != 7 {
		t.Fatalf("jobs = %v", health["jobs"])
	}
	jobs := getJSON(t, ts.URL+"/api/jobs", 200)
	if len(jobs["jobs"].([]interface{})) != 7 {
		t.Fatalf("jobs list = %v", jobs["jobs"])
	}
}

func TestJobInfo(t *testing.T) {
	ts, anomJob, _ := deploy(t)
	info := getJSON(t, fmt.Sprintf("%s/api/jobs/%d", ts.URL, anomJob), 200)
	comps := info["components"].([]interface{})
	if len(comps) != 4 {
		t.Fatalf("components = %v", comps)
	}
}

func TestAnomaliesDashboard(t *testing.T) {
	ts, anomJob, _ := deploy(t)
	out := getJSON(t, fmt.Sprintf("%s/api/jobs/%d/anomalies", ts.URL, anomJob), 200)
	nodes := out["nodes"].([]interface{})
	if len(nodes) != 4 {
		t.Fatalf("nodes = %v", nodes)
	}
	flagged := 0
	for _, n := range nodes {
		node := n.(map[string]interface{})
		if node["anomalous"] == true {
			flagged++
		}
		if node["score"].(float64) < 0 {
			t.Fatal("negative score")
		}
	}
	if flagged == 0 {
		t.Fatal("memleak job should have flagged nodes")
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, anomJob, anomComp := deploy(t)
	out := getJSON(t, fmt.Sprintf("%s/api/jobs/%d/explain?component=%d", ts.URL, anomJob, anomComp), 200)
	metrics := out["metrics"].([]interface{})
	if len(metrics) == 0 {
		t.Fatalf("explanation = %v", out)
	}
	if out["score_before"].(float64) <= out["score_after"].(float64) {
		t.Fatal("explanation must reduce the score")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, anomJob, anomComp := deploy(t)
	url := fmt.Sprintf("%s/api/jobs/%d/metrics?component=%d&metric=MemFree::meminfo", ts.URL, anomJob, anomComp)
	out := getJSON(t, url, 200)
	values := out["values"].([]interface{})
	tsAxis := out["timestamps"].([]interface{})
	if len(values) == 0 || len(values) != len(tsAxis) {
		t.Fatalf("series lengths %d vs %d", len(values), len(tsAxis))
	}
}

func TestErrorPaths(t *testing.T) {
	ts, anomJob, _ := deploy(t)
	cases := []struct {
		path   string
		status int
	}{
		{"/api/jobs/notanumber/anomalies", 400},
		{"/api/jobs/99999/anomalies", 404},
		{fmt.Sprintf("/api/jobs/%d/unknown", anomJob), 404},
		{fmt.Sprintf("/api/jobs/%d/explain", anomJob), 400},             // missing component
		{fmt.Sprintf("/api/jobs/%d/metrics?component=0", anomJob), 400}, // missing metric
		{fmt.Sprintf("/api/jobs/%d/metrics?component=0&metric=unqualified", anomJob), 400},
		{fmt.Sprintf("/api/jobs/%d/metrics?component=0&metric=nope::meminfo", anomJob), 404},
	}
	for _, c := range cases {
		out := getJSON(t, ts.URL+c.path, c.status)
		if out["error"] == "" {
			t.Errorf("%s: missing error message", c.path)
		}
	}
}

func TestUntrainedModelRejected(t *testing.T) {
	store := dsos.NewStore()
	srv := httptest.NewServer(server.New(store, core.New(core.DefaultConfig())))
	defer srv.Close()
	getJSON(t, srv.URL+"/api/jobs/1/anomalies", http.StatusServiceUnavailable)
	health := getJSON(t, srv.URL+"/api/health", 200)
	if health["trained"] != false {
		t.Fatal("untrained model should report trained=false")
	}
}
