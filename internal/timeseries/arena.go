package timeseries

import (
	"sync"

	"prodigy/internal/obs"
)

// Arena recycles the allocations of the query/assembly path: timestamp
// axes, metric columns and Table shells. Query code carves slices out of
// large reusable slabs instead of allocating per column, so the per-job
// table assembly of AnalyzeJob settles to zero allocations once the slabs
// have grown to the job's working-set size.
//
// Everything handed out by an arena is valid only until the next Reset (or
// PutArena): callers must finish with the tables before recycling. Slices
// are returned with unspecified contents — the query path overwrites every
// cell. A nil *Arena is valid and falls back to plain allocation, so one
// code path serves both the pooled hot loop and one-shot callers.
//
// An Arena is not safe for concurrent use; pool instances with
// GetArena/PutArena.
type Arena struct {
	floats []float64
	fOff   int
	ints   []int64
	iOff   int
	// tables retains every shell ever handed out so Reset can recycle
	// them: the timestamp axis is swapped, the column map cleared (Go
	// keeps the buckets) and Order truncated in place.
	tables []*Table
	tOff   int
}

// minimum slab sizes; real jobs grow past these on first use and then
// stay put.
const (
	arenaMinFloats = 4096
	arenaMinInts   = 1024
)

// Reset recycles the arena: previously handed-out slices and tables are
// reused by subsequent calls, so anything still referencing them must be
// done.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.fOff, a.iOff, a.tOff = 0, 0, 0
}

// Floats returns an n-element slice with unspecified contents, capacity
// clipped to n so appends cannot bleed into a neighbouring allocation.
func (a *Arena) Floats(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if a.fOff+n > len(a.floats) {
		size := 2 * len(a.floats)
		if size < n {
			size = n
		}
		if size < arenaMinFloats {
			size = arenaMinFloats
		}
		// The old slab stays alive through the slices already handed out;
		// the arena just stops carving from it. After the doubling settles
		// one slab covers a whole Reset cycle.
		a.floats = make([]float64, size)
		a.fOff = 0
	}
	s := a.floats[a.fOff : a.fOff+n : a.fOff+n]
	a.fOff += n
	return s
}

// Ints returns an n-element int64 slice with unspecified contents.
func (a *Arena) Ints(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	if a.iOff+n > len(a.ints) {
		size := 2 * len(a.ints)
		if size < n {
			size = n
		}
		if size < arenaMinInts {
			size = arenaMinInts
		}
		a.ints = make([]int64, size)
		a.iOff = 0
	}
	s := a.ints[a.iOff : a.iOff+n : a.iOff+n]
	a.iOff += n
	return s
}

// NewTable returns an empty table on the given timestamp axis, recycling a
// shell from a previous cycle when one is free: the column map keeps its
// buckets across clear, so steady-state reinsertion of the same metrics
// allocates nothing.
func (a *Arena) NewTable(timestamps []int64) *Table {
	if a == nil {
		return NewTable(timestamps)
	}
	if a.tOff < len(a.tables) {
		t := a.tables[a.tOff]
		a.tOff++
		t.Timestamps = timestamps
		clear(t.Columns)
		t.Order = t.Order[:0]
		return t
	}
	t := NewTable(timestamps)
	a.tables = append(a.tables, t)
	a.tOff++
	return t
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// Pool-efficiency counters, mirroring the mat/features workspace pools: a
// high steady-state miss rate means the GC drains the pool between
// checkouts and assembly re-grows its slabs instead of reusing warm ones.
var (
	arenaPoolHits = obs.Default.NewCounter("timeseries_arena_pool_hits_total",
		"Arena checkouts satisfied by a pooled instance with warm slabs.")
	arenaPoolMisses = obs.Default.NewCounter("timeseries_arena_pool_misses_total",
		"Arena checkouts that had to allocate a fresh instance.")
)

// GetArena checks a reset arena out of the process-wide pool.
func GetArena() *Arena {
	a := arenaPool.Get().(*Arena)
	if a.floats != nil || a.tables != nil {
		arenaPoolHits.Inc()
	} else {
		arenaPoolMisses.Inc()
	}
	a.Reset()
	return a
}

// PutArena resets a and returns it to the pool. The caller must be done
// with every slice and table the arena handed out.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}

// AlignSortedInto is Align for inputs whose timestamp axes are already
// sorted ascending (the dsos query path sorts buffers on demand): a k-way
// sorted merge replaces Align's hash-map bookkeeping, and the output
// timestamp axis, columns and shell come from the arena. Duplicate
// timestamps within a table collapse to the last row, matching Align. A
// nil arena falls back to plain allocation.
func AlignSortedInto(a *Arena, tables ...*Table) *Table {
	if len(tables) == 0 {
		return a.NewTable(nil)
	}
	if len(tables) == 1 {
		// Single sampler: nothing to intersect. The input is already
		// arena-owned (or caller-owned) with the same lifetime.
		return tables[0]
	}
	// Pass 1: intersect the sorted axes. pos records, per (table, common
	// timestamp), the source row to gather from — for duplicates the last
	// row with that timestamp, as Align's index map keeps.
	shortest := len(tables[0].Timestamps)
	for _, tb := range tables[1:] {
		if len(tb.Timestamps) < shortest {
			shortest = len(tb.Timestamps)
		}
	}
	common := a.Ints(shortest)
	pos := a.Ints(shortest * len(tables))
	cursors := a.Ints(len(tables))
	for j := range cursors {
		cursors[j] = 0 // arena slices come back dirty
	}
	n := 0
scan:
	for i0 := 0; i0 < len(tables[0].Timestamps) && n < shortest; i0++ {
		ts := tables[0].Timestamps[i0]
		if i0+1 < len(tables[0].Timestamps) && tables[0].Timestamps[i0+1] == ts {
			continue // collapse duplicate runs: only the last occurrence scans
		}
		inAll := true
		for j := 1; j < len(tables); j++ {
			axis := tables[j].Timestamps
			c := int(cursors[j])
			for c < len(axis) && axis[c] < ts {
				c++
			}
			if c == len(axis) {
				break scan // table j exhausted: no further common timestamps
			}
			if axis[c] != ts {
				cursors[j] = int64(c)
				inAll = false
				continue
			}
			for c+1 < len(axis) && axis[c+1] == ts {
				c++
			}
			cursors[j] = int64(c)
			if inAll {
				pos[n*len(tables)+j] = int64(c)
			}
		}
		if inAll {
			common[n] = ts
			pos[n*len(tables)] = int64(i0)
			n++
		}
	}
	common = common[:n]

	// Pass 2: gather the columns of every table at the common rows.
	out := a.NewTable(common)
	for j, tb := range tables {
		for _, m := range tb.Order {
			src := tb.Columns[m]
			col := a.Floats(n)
			for i := 0; i < n; i++ {
				col[i] = src[pos[i*len(tables)+j]]
			}
			out.AddColumn(m, col)
		}
	}
	return out
}
