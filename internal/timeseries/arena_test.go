package timeseries

import (
	"fmt"
	"math/rand"
	"testing"
)

// randSortedTable builds a table with a sorted timestamp axis where each
// step has a 50% chance of duplicating the previous timestamp — the
// densest duplicate mix the dsos buffers can produce.
func randSortedTable(rng *rand.Rand, name string) *Table {
	n := rng.Intn(8)
	ts := make([]int64, n)
	v := int64(0)
	for i := range ts {
		v += int64(rng.Intn(2))
		ts[i] = v
	}
	tb := NewTable(ts)
	col := make([]float64, n)
	for i := range col {
		col[i] = float64(i)
	}
	tb.AddColumn(name, col)
	return tb
}

// TestAlignSortedIntoMatchesAlign differential-tests the k-way merge
// against the hash-map reference over random small sorted inputs,
// including empty tables and heavy duplicate runs. Regression for two
// out-of-bounds scans: an empty input table zeroes the intersection
// capacity but the scan wrote position entries before discovering the
// exhaustion, and a duplicate-free shortest table could be fully
// consumed with the outer scan still running.
func TestAlignSortedIntoMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20000; iter++ {
		tables := make([]*Table, 2+rng.Intn(3))
		for j := range tables {
			tables[j] = randSortedTable(rng, fmt.Sprintf("m%d", j))
		}
		want := Align(tables...)
		got := AlignSortedInto(nil, tables...)
		if len(got.Timestamps) != len(want.Timestamps) {
			t.Fatalf("iter %d: %d common timestamps, want %d (axes %v)",
				iter, len(got.Timestamps), len(want.Timestamps), axes(tables))
		}
		for i := range want.Timestamps {
			if got.Timestamps[i] != want.Timestamps[i] {
				t.Fatalf("iter %d: timestamp %d differs (axes %v)", iter, i, axes(tables))
			}
		}
		for _, m := range want.Order {
			for i := range want.Timestamps {
				if got.Columns[m][i] != want.Columns[m][i] {
					t.Fatalf("iter %d: column %s row %d = %v, want %v (axes %v)",
						iter, m, i, got.Columns[m][i], want.Columns[m][i], axes(tables))
				}
			}
		}
	}
}

func axes(tables []*Table) []string {
	out := make([]string, len(tables))
	for i, tb := range tables {
		out[i] = fmt.Sprint(tb.Timestamps)
	}
	return out
}
