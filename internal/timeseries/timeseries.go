// Package timeseries provides the multivariate time-series containers and
// preprocessing operations Prodigy applies to raw telemetry before feature
// extraction: linear interpolation of missing values, first-differencing of
// accumulated counters, boundary trimming, and timestamp alignment across
// sampler sets (paper §4.2.1, §5.4.1).
package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// Missing is the sentinel recorded for a sample that was lost during
// collection. NaN matches the semantics of the production pipeline, where
// dropped LDMS samples surface as nulls.
var Missing = math.NaN()

// IsMissing reports whether v is the missing-value sentinel.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Series is a single named metric sampled at regular intervals.
type Series struct {
	Metric string
	// Values holds one sample per timestep; Missing marks dropped samples.
	Values []float64
}

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return Series{Metric: s.Metric, Values: v}
}

// Interpolate fills Missing values by linear interpolation between the
// nearest observed neighbours, extending the first/last observation to the
// boundaries. A series with no observed values is filled with zeros.
// It returns the number of values filled.
func (s *Series) Interpolate() int {
	v := s.Values
	n := len(v)
	filled := 0
	prev := -1 // index of last observed value
	for i := 0; i < n; i++ {
		if IsMissing(v[i]) {
			continue
		}
		if prev == -1 && i > 0 {
			// Leading gap: back-fill with the first observation.
			for j := 0; j < i; j++ {
				v[j] = v[i]
				filled++
			}
		} else if prev >= 0 && i-prev > 1 {
			// Interior gap: linear interpolation.
			step := (v[i] - v[prev]) / float64(i-prev)
			for j := prev + 1; j < i; j++ {
				v[j] = v[prev] + step*float64(j-prev)
				filled++
			}
		}
		prev = i
	}
	switch {
	case prev == -1:
		// Nothing observed at all.
		for i := range v {
			v[i] = 0
			filled++
		}
	case prev < n-1:
		// Trailing gap: forward-fill with the last observation.
		for j := prev + 1; j < n; j++ {
			v[j] = v[prev]
			filled++
		}
	}
	return filled
}

// Diff replaces the series with its first difference, preserving length by
// keeping the first element as 0. This converts accumulated counters (e.g.
// procstat totals) into per-interval rates.
func (s *Series) Diff() {
	v := s.Values
	if len(v) == 0 {
		return
	}
	prev := v[0]
	v[0] = 0
	for i := 1; i < len(v); i++ {
		cur := v[i]
		v[i] = cur - prev
		prev = cur
	}
}

// Table is a multivariate time series: a shared timestamp axis and one
// column per metric. It is the in-memory analogue of the per-(job, node)
// Pandas frame the paper's DataGenerator produces.
type Table struct {
	// Timestamps are in seconds, strictly increasing.
	Timestamps []int64
	// Columns maps metric name to its values, each len(Timestamps) long.
	Columns map[string][]float64
	// Order lists metric names in a canonical order for deterministic
	// iteration. Len(Order) == len(Columns).
	Order []string
}

// NewTable creates an empty table with the given timestamp axis.
func NewTable(timestamps []int64) *Table {
	return &Table{Timestamps: timestamps, Columns: make(map[string][]float64)}
}

// Len returns the number of timesteps.
func (t *Table) Len() int { return len(t.Timestamps) }

// NumMetrics returns the number of metric columns.
func (t *Table) NumMetrics() int { return len(t.Order) }

// AddColumn appends a metric column. It panics if the length disagrees with
// the timestamp axis or the metric already exists.
func (t *Table) AddColumn(metric string, values []float64) {
	if len(values) != len(t.Timestamps) {
		panic(fmt.Sprintf("timeseries: column %q has %d values for %d timestamps", metric, len(values), len(t.Timestamps)))
	}
	if _, dup := t.Columns[metric]; dup {
		panic(fmt.Sprintf("timeseries: duplicate column %q", metric))
	}
	t.Columns[metric] = values
	t.Order = append(t.Order, metric)
}

// Column returns the values for metric, or nil if absent.
func (t *Table) Column(metric string) []float64 { return t.Columns[metric] }

// Series returns the named column as a Series sharing storage with the
// table, and whether it exists.
func (t *Table) Series(metric string) (Series, bool) {
	v, ok := t.Columns[metric]
	return Series{Metric: metric, Values: v}, ok
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	ts := make([]int64, len(t.Timestamps))
	copy(ts, t.Timestamps)
	out := NewTable(ts)
	for _, m := range t.Order {
		v := make([]float64, len(t.Columns[m]))
		copy(v, t.Columns[m])
		out.AddColumn(m, v)
	}
	return out
}

// TrimBoundary removes the first and last seconds timesteps (the paper trims
// 60 s of initialization and termination noise). If the table is shorter
// than 2*seconds+1 timesteps, it trims as much as possible while keeping at
// least one timestep.
func (t *Table) TrimBoundary(seconds int) {
	n := t.Len()
	if n == 0 || seconds <= 0 {
		return
	}
	lo, hi := seconds, n-seconds
	if hi-lo < 1 {
		// Degenerate: keep the middle timestep.
		mid := n / 2
		lo, hi = mid, mid+1
	}
	t.Timestamps = t.Timestamps[lo:hi]
	for m, v := range t.Columns {
		t.Columns[m] = v[lo:hi]
	}
}

// InterpolateAll linearly interpolates missing values in every column and
// returns the total number of filled cells.
func (t *Table) InterpolateAll() int {
	total := 0
	for _, m := range t.Order {
		s := Series{Metric: m, Values: t.Columns[m]}
		total += s.Interpolate()
	}
	return total
}

// DiffColumns first-differences the named columns in place. Unknown names
// are ignored so callers can pass a static accumulated-counter list.
func (t *Table) DiffColumns(metrics []string) {
	for _, m := range metrics {
		if v, ok := t.Columns[m]; ok {
			s := Series{Metric: m, Values: v}
			s.Diff()
		}
	}
}

// SortColumns orders the metric columns lexicographically, giving tables a
// canonical layout regardless of insertion order.
func (t *Table) SortColumns() { sort.Strings(t.Order) }

// Align returns a new table restricted to timestamps present in every input
// table, with all columns from all inputs. Column name collisions panic;
// callers namespace metrics per sampler (e.g. "MemFree::meminfo"). This is
// the "find common timestamps across different samplers" step.
func Align(tables ...*Table) *Table {
	if len(tables) == 0 {
		return NewTable(nil)
	}
	// Count timestamp occurrences across tables; keep those present in all.
	count := make(map[int64]int)
	for _, tb := range tables {
		seen := make(map[int64]bool, len(tb.Timestamps))
		for _, ts := range tb.Timestamps {
			if !seen[ts] {
				seen[ts] = true
				count[ts]++
			}
		}
	}
	var common []int64
	for ts, c := range count {
		if c == len(tables) {
			common = append(common, ts)
		}
	}
	sort.Slice(common, func(i, j int) bool { return common[i] < common[j] })

	out := NewTable(common)
	for _, tb := range tables {
		// Map timestamp -> row index within tb.
		idx := make(map[int64]int, len(tb.Timestamps))
		for i, ts := range tb.Timestamps {
			idx[ts] = i
		}
		for _, m := range tb.Order {
			src := tb.Columns[m]
			col := make([]float64, len(common))
			for i, ts := range common {
				col[i] = src[idx[ts]]
			}
			out.AddColumn(m, col)
		}
	}
	return out
}

// Window returns a copy of the table restricted to timestamps in [from, to).
func (t *Table) Window(from, to int64) *Table {
	lo := sort.Search(len(t.Timestamps), func(i int) bool { return t.Timestamps[i] >= from })
	hi := sort.Search(len(t.Timestamps), func(i int) bool { return t.Timestamps[i] >= to })
	ts := make([]int64, hi-lo)
	copy(ts, t.Timestamps[lo:hi])
	out := NewTable(ts)
	for _, m := range t.Order {
		col := make([]float64, hi-lo)
		copy(col, t.Columns[m][lo:hi])
		out.AddColumn(m, col)
	}
	return out
}

// DropColumns removes the named columns if present.
func (t *Table) DropColumns(metrics []string) {
	drop := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		drop[m] = true
	}
	kept := t.Order[:0]
	for _, m := range t.Order {
		if drop[m] {
			delete(t.Columns, m)
		} else {
			kept = append(kept, m)
		}
	}
	t.Order = kept
}

// Resample aggregates the table into fixed-width time buckets, averaging
// observed values within each bucket (missing values are skipped; a bucket
// with no observations is Missing). Monitoring deployments mix sampler
// rates — 1 Hz kernel counters next to 10-second job schedulers — and
// resampling brings them onto one axis before Align.
func (t *Table) Resample(bucketSeconds int64) *Table {
	if bucketSeconds <= 1 || t.Len() == 0 {
		return t.Clone()
	}
	first := t.Timestamps[0]
	last := t.Timestamps[t.Len()-1]
	numBuckets := int((last-first)/bucketSeconds) + 1
	ts := make([]int64, numBuckets)
	for i := range ts {
		ts[i] = first + int64(i)*bucketSeconds
	}
	out := NewTable(ts)
	for _, m := range t.Order {
		src := t.Columns[m]
		sums := make([]float64, numBuckets)
		counts := make([]int, numBuckets)
		for i, v := range src {
			if IsMissing(v) {
				continue
			}
			b := int((t.Timestamps[i] - first) / bucketSeconds)
			sums[b] += v
			counts[b]++
		}
		col := make([]float64, numBuckets)
		for b := range col {
			if counts[b] == 0 {
				col[b] = Missing
			} else {
				col[b] = sums[b] / float64(counts[b])
			}
		}
		out.AddColumn(m, col)
	}
	return out
}
