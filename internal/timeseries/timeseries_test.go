package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterpolateInteriorGap(t *testing.T) {
	s := Series{Values: []float64{1, Missing, Missing, 4}}
	n := s.Interpolate()
	if n != 2 {
		t.Fatalf("filled %d, want 2", n)
	}
	want := []float64{1, 2, 3, 4}
	for i, v := range want {
		if math.Abs(s.Values[i]-v) > 1e-12 {
			t.Fatalf("Values = %v", s.Values)
		}
	}
}

func TestInterpolateLeadingTrailing(t *testing.T) {
	s := Series{Values: []float64{Missing, 5, Missing}}
	s.Interpolate()
	if s.Values[0] != 5 || s.Values[2] != 5 {
		t.Fatalf("Values = %v", s.Values)
	}
}

func TestInterpolateAllMissing(t *testing.T) {
	s := Series{Values: []float64{Missing, Missing}}
	n := s.Interpolate()
	if n != 2 || s.Values[0] != 0 || s.Values[1] != 0 {
		t.Fatalf("Values = %v filled=%d", s.Values, n)
	}
}

func TestInterpolateNoMissing(t *testing.T) {
	s := Series{Values: []float64{1, 2, 3}}
	if n := s.Interpolate(); n != 0 {
		t.Fatalf("filled %d on clean series", n)
	}
}

func TestDiff(t *testing.T) {
	s := Series{Values: []float64{10, 13, 13, 20}}
	s.Diff()
	want := []float64{0, 3, 0, 7}
	for i, v := range want {
		if s.Values[i] != v {
			t.Fatalf("Diff = %v", s.Values)
		}
	}
	empty := Series{}
	empty.Diff() // must not panic
}

func TestTableAddColumnValidation(t *testing.T) {
	tb := NewTable([]int64{1, 2, 3})
	tb.AddColumn("a", []float64{1, 2, 3})
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"length mismatch", func() { tb.AddColumn("b", []float64{1}) }},
		{"duplicate", func() { tb.AddColumn("a", []float64{1, 2, 3}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func TestTrimBoundary(t *testing.T) {
	ts := make([]int64, 10)
	vals := make([]float64, 10)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = float64(i)
	}
	tb := NewTable(ts)
	tb.AddColumn("m", vals)
	tb.TrimBoundary(2)
	if tb.Len() != 6 || tb.Timestamps[0] != 2 || tb.Timestamps[5] != 7 {
		t.Fatalf("after trim: %v", tb.Timestamps)
	}
	if tb.Column("m")[0] != 2 {
		t.Fatalf("column not trimmed: %v", tb.Column("m"))
	}
}

func TestTrimBoundaryDegenerate(t *testing.T) {
	tb := NewTable([]int64{1, 2, 3})
	tb.AddColumn("m", []float64{1, 2, 3})
	tb.TrimBoundary(60)
	if tb.Len() != 1 {
		t.Fatalf("degenerate trim kept %d rows", tb.Len())
	}
	empty := NewTable(nil)
	empty.TrimBoundary(60) // must not panic
}

func TestAlign(t *testing.T) {
	a := NewTable([]int64{1, 2, 3, 4})
	a.AddColumn("x::s1", []float64{10, 20, 30, 40})
	b := NewTable([]int64{2, 3, 5})
	b.AddColumn("y::s2", []float64{200, 300, 500})
	out := Align(a, b)
	if out.Len() != 2 || out.Timestamps[0] != 2 || out.Timestamps[1] != 3 {
		t.Fatalf("aligned timestamps = %v", out.Timestamps)
	}
	if got := out.Column("x::s1"); got[0] != 20 || got[1] != 30 {
		t.Fatalf("x column = %v", got)
	}
	if got := out.Column("y::s2"); got[0] != 200 || got[1] != 300 {
		t.Fatalf("y column = %v", got)
	}
	if out.NumMetrics() != 2 {
		t.Fatalf("NumMetrics = %d", out.NumMetrics())
	}
}

func TestAlignEmpty(t *testing.T) {
	if Align().Len() != 0 {
		t.Fatal("Align() should be empty")
	}
}

func TestWindow(t *testing.T) {
	tb := NewTable([]int64{10, 20, 30, 40})
	tb.AddColumn("m", []float64{1, 2, 3, 4})
	w := tb.Window(15, 40)
	if w.Len() != 2 || w.Column("m")[0] != 2 || w.Column("m")[1] != 3 {
		t.Fatalf("window = %v %v", w.Timestamps, w.Column("m"))
	}
	// Window copies: mutating the window must not affect the parent.
	w.Column("m")[0] = 99
	if tb.Column("m")[1] == 99 {
		t.Fatal("Window must copy")
	}
}

func TestDropColumns(t *testing.T) {
	tb := NewTable([]int64{1})
	tb.AddColumn("keep", []float64{1})
	tb.AddColumn("drop1", []float64{2})
	tb.AddColumn("drop2", []float64{3})
	tb.DropColumns([]string{"drop1", "drop2", "absent"})
	if tb.NumMetrics() != 1 || tb.Order[0] != "keep" {
		t.Fatalf("Order = %v", tb.Order)
	}
	if tb.Column("drop1") != nil {
		t.Fatal("column not deleted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := NewTable([]int64{1, 2})
	tb.AddColumn("m", []float64{1, 2})
	c := tb.Clone()
	c.Column("m")[0] = 42
	c.Timestamps[0] = 42
	if tb.Column("m")[0] == 42 || tb.Timestamps[0] == 42 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestDiffColumnsIgnoresUnknown(t *testing.T) {
	tb := NewTable([]int64{1, 2})
	tb.AddColumn("acc", []float64{5, 9})
	tb.DiffColumns([]string{"acc", "missing"})
	if v := tb.Column("acc"); v[0] != 0 || v[1] != 4 {
		t.Fatalf("DiffColumns = %v", v)
	}
}

// Property: interpolation leaves no missing values and preserves observed
// points exactly.
func TestQuickInterpolateComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		type obs struct {
			i int
			v float64
		}
		var observed []obs
		for i := range vals {
			if rng.Float64() < 0.4 {
				vals[i] = Missing
			} else {
				vals[i] = rng.NormFloat64() * 10
				observed = append(observed, obs{i, vals[i]})
			}
		}
		s := Series{Values: vals}
		s.Interpolate()
		for _, v := range s.Values {
			if IsMissing(v) {
				return false
			}
		}
		for _, o := range observed {
			if s.Values[o.i] != o.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolated values never exceed the range of their bracketing
// observations (linearity implies in-hull values).
func TestQuickInterpolateBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		vals := make([]float64, n)
		var lo, hi float64 = math.Inf(1), math.Inf(-1)
		any := false
		for i := range vals {
			if rng.Float64() < 0.5 {
				vals[i] = Missing
			} else {
				vals[i] = rng.Float64() * 100
				if vals[i] < lo {
					lo = vals[i]
				}
				if vals[i] > hi {
					hi = vals[i]
				}
				any = true
			}
		}
		if !any {
			return true
		}
		s := Series{Values: vals}
		s.Interpolate()
		for _, v := range s.Values {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestResample(t *testing.T) {
	tb := NewTable([]int64{0, 1, 2, 3, 4, 5})
	tb.AddColumn("m", []float64{1, 3, 5, 7, Missing, 11})
	out := tb.Resample(2)
	if out.Len() != 3 {
		t.Fatalf("resampled len = %d", out.Len())
	}
	col := out.Column("m")
	// Buckets: {1,3}→2, {5,7}→6, {missing,11}→11.
	if col[0] != 2 || col[1] != 6 || col[2] != 11 {
		t.Fatalf("resampled = %v", col)
	}
	if out.Timestamps[1] != 2 {
		t.Fatalf("timestamps = %v", out.Timestamps)
	}
}

func TestResampleEmptyBucketIsMissing(t *testing.T) {
	tb := NewTable([]int64{0, 10})
	tb.AddColumn("m", []float64{1, 2})
	out := tb.Resample(5)
	col := out.Column("m")
	if col[0] != 1 || !IsMissing(col[1]) || col[2] != 2 {
		t.Fatalf("resampled = %v", col)
	}
}

func TestResampleIdentityForSmallBucket(t *testing.T) {
	tb := NewTable([]int64{0, 1, 2})
	tb.AddColumn("m", []float64{1, 2, 3})
	out := tb.Resample(1)
	if out.Len() != 3 || out.Column("m")[2] != 3 {
		t.Fatal("bucket=1 should clone")
	}
	// And the clone is independent.
	out.Column("m")[0] = 99
	if tb.Column("m")[0] == 99 {
		t.Fatal("must not share storage")
	}
	if tb.Resample(0).Len() != 3 {
		t.Fatal("bucket=0 should clone")
	}
	if NewTable(nil).Resample(5).Len() != 0 {
		t.Fatal("empty table")
	}
}
