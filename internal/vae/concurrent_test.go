package vae

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentScores shares one trained VAE across many scoring
// goroutines. Under -race this is the regression test for the forward-pass
// activation race: before inference went stateless, two concurrent Scores
// calls silently corrupted each other's reconstructions.
func TestConcurrentScores(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	healthy, anom := clusterData(64, 16, 12, rng)
	cfg := smallConfig(12)
	cfg.Epochs = 40
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Fit(healthy, nil); err != nil {
		t.Fatal(err)
	}
	wantH := v.Scores(healthy)
	wantA := v.Scores(anom)

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				x, want := healthy, wantH
				if (g+i)%2 == 1 {
					x, want = anom, wantA
				}
				got := v.Scores(x)
				for j := range got {
					if got[j] != want[j] {
						errs <- "concurrent Scores returned corrupted values"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
