package vae

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"prodigy/internal/mat"
)

// fitWorkers trains a fresh, identically-seeded VAE at the given worker
// count and returns its serialized weights. JSON encodes float64 with
// exact round-trip precision, so byte equality is bit equality.
func fitWorkers(t *testing.T, workers int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(29))
	healthy, _ := clusterData(160, 0, 10, rng)
	cfg := smallConfig(10)
	cfg.Epochs = 5
	cfg.BatchSize = 160 // 10 gradient shards per step: real fan-out at 8 workers
	cfg.Workers = workers
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Fit(healthy, nil); err != nil {
		t.Fatal(err)
	}
	// The serialized model embeds the config; neutralize the knob under
	// test so the byte comparison covers exactly the learned weights.
	v.Cfg.Workers = 0
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestFitDeterministicAcrossWorkers pins DESIGN.md §11 for the VAE: the
// reparameterization noise is drawn serially per batch and gradient shards
// reduce in a fixed tree, so the trained weights are bit-identical for any
// Workers value. Run under -race this also exercises the sharded VAE
// backward at an 8-way fan-out.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	ref := fitWorkers(t, 1)
	for _, workers := range []int{2, 8} {
		if got := fitWorkers(t, workers); !bytes.Equal(got, ref) {
			t.Fatalf("Workers=%d: serialized model differs from Workers=1 (weights must be bit-identical)", workers)
		}
	}
}

// TestFitWorkersScoresFinite guards the parallel path end to end: scores
// from a model trained at a wide fan-out must be finite and usable.
func TestFitWorkersScoresFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	healthy, anom := clusterData(160, 8, 10, rng)
	cfg := smallConfig(10)
	cfg.Epochs = 5
	cfg.BatchSize = 160
	cfg.Workers = 8
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Fit(healthy, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range v.Scores(mat.VStack(healthy, anom)) {
		if s != s {
			t.Fatal("NaN score from worker-trained model")
		}
	}
}
