// Package vae implements the variational autoencoder at the heart of
// Prodigy (paper §3.3): an encoder mapping feature vectors to the mean and
// log-variance of a Gaussian posterior q(z|x), the reparameterization trick
// z = μ + σ⊙ε, a decoder p(x|z), and training by maximizing the evidence
// lower bound (reconstruction term minus KL divergence to the standard
// normal prior).
//
// Anomaly scoring follows §3.4: a sample's score is the mean absolute error
// between the input and its deterministic reconstruction through the
// posterior mean.
package vae

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"prodigy/internal/mat"
	"prodigy/internal/nn"
)

// Config describes a VAE architecture and its training hyperparameters.
// The defaults mirror the paper's optimal grid-search values (Table 3):
// learning rate 1e-4, batch size 256, 2400 epochs.
type Config struct {
	InputDim   int    `json:"input_dim"`
	HiddenDims []int  `json:"hidden_dims"` // encoder widths; decoder mirrors them
	LatentDim  int    `json:"latent_dim"`
	Activation string `json:"activation"`

	LearningRate float64 `json:"learning_rate"`
	BatchSize    int     `json:"batch_size"`
	Epochs       int     `json:"epochs"`
	// Beta weights the KL term of the ELBO. Values below 1 trade latent
	// regularity for reconstruction fidelity, which favours detection.
	Beta float64 `json:"beta"`
	// ClipNorm bounds the global gradient norm per step; 0 disables.
	ClipNorm float64 `json:"clip_norm"`
	Seed     int64   `json:"seed"`
	// Workers caps the data-parallel fan-out of each training step; 0 or
	// negative means GOMAXPROCS. Trained weights are bit-identical for
	// every value (DESIGN.md §11).
	Workers int `json:"workers,omitempty"`
}

// DefaultConfig returns the paper-tuned configuration for the given input
// dimensionality.
func DefaultConfig(inputDim int) Config {
	return Config{
		InputDim:     inputDim,
		HiddenDims:   []int{64, 32},
		LatentDim:    8,
		Activation:   "tanh",
		LearningRate: 1e-4,
		BatchSize:    256,
		Epochs:       2400,
		Beta:         1e-3,
		ClipNorm:     5,
		Seed:         1,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.InputDim <= 0:
		return fmt.Errorf("vae: input dim %d", c.InputDim)
	case c.LatentDim <= 0:
		return fmt.Errorf("vae: latent dim %d", c.LatentDim)
	case c.LearningRate <= 0:
		return fmt.Errorf("vae: learning rate %v", c.LearningRate)
	case c.Epochs <= 0:
		return fmt.Errorf("vae: epochs %d", c.Epochs)
	case c.Beta < 0:
		return fmt.Errorf("vae: beta %v", c.Beta)
	}
	for _, h := range c.HiddenDims {
		if h <= 0 {
			return fmt.Errorf("vae: hidden dim %d", h)
		}
	}
	return nil
}

// VAE is a trained or in-training variational autoencoder.
type VAE struct {
	Cfg Config

	encoder    *nn.Network // input -> last hidden
	muHead     *nn.Dense   // hidden -> latent mean
	logvarHead *nn.Dense   // hidden -> latent log-variance
	decoder    *nn.Network // latent -> reconstruction
}

// New constructs an untrained VAE from the configuration.
func New(cfg Config) (*VAE, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	encWidths := append([]int{cfg.InputDim}, cfg.HiddenDims...)
	if len(cfg.HiddenDims) == 0 {
		// Degenerate but legal: encode straight from the input.
		encWidths = []int{cfg.InputDim, cfg.InputDim}
	}
	encoder, err := nn.NewMLP(encWidths, cfg.Activation, cfg.Activation, rng)
	if err != nil {
		return nil, err
	}
	lastHidden := encWidths[len(encWidths)-1]

	// Decoder mirrors the encoder: latent -> reversed hidden -> input.
	decWidths := []int{cfg.LatentDim}
	for i := len(cfg.HiddenDims) - 1; i >= 0; i-- {
		decWidths = append(decWidths, cfg.HiddenDims[i])
	}
	decWidths = append(decWidths, cfg.InputDim)
	decoder, err := nn.NewMLP(decWidths, cfg.Activation, "", rng)
	if err != nil {
		return nil, err
	}
	return &VAE{
		Cfg:        cfg,
		encoder:    encoder,
		muHead:     nn.NewDense(lastHidden, cfg.LatentDim, rng),
		logvarHead: nn.NewDense(lastHidden, cfg.LatentDim, rng),
		decoder:    decoder,
	}, nil
}

// logvarBound keeps exp(logvar) in a numerically safe range.
const logvarBound = 10

// Encode returns the posterior mean and log-variance for each row of x.
// It is a stateless inference pass: safe for concurrent callers sharing
// this VAE as long as no goroutine is running Fit on it.
func (v *VAE) Encode(x *mat.Matrix) (mu, logvar *mat.Matrix) {
	h := v.encoder.Infer(x)
	mu = v.muHead.Apply(h)
	logvar = v.logvarHead.Apply(h)
	logvar.ApplyInPlace(func(lv float64) float64 { return mat.Clamp(lv, -logvarBound, logvarBound) })
	return mu, logvar
}

// Decode maps latent vectors back to input space. Stateless, like Encode.
func (v *VAE) Decode(z *mat.Matrix) *mat.Matrix { return v.decoder.Infer(z) }

// Reconstruct returns the deterministic reconstruction of x through the
// posterior mean (no sampling), as used for anomaly scoring. Allocating
// wrapper over reconstructInto.
func (v *VAE) Reconstruct(x *mat.Matrix) *mat.Matrix {
	ws := mat.GetWorkspace()
	defer mat.Release(ws)
	//lint:ignore hotalloc compat wrapper materializes a caller-owned copy of the workspace result
	return v.reconstructInto(x, ws).Clone()
}

// reconstructInto is the workspace form of Reconstruct. It skips the
// logvar head entirely — the deterministic reconstruction only consumes
// the posterior mean, so scoring pays for one head instead of two.
func (v *VAE) reconstructInto(x *mat.Matrix, ws *mat.Workspace) *mat.Matrix {
	h := v.encoder.InferInto(x, ws)
	mu := v.muHead.ApplyInto(h, ws)
	if h != x {
		ws.Put(h)
	}
	out := v.decoder.InferInto(mu, ws)
	return out
}

// Scores returns the per-sample reconstruction MAE of x (paper §3.3: "we
// measure the reconstruction error using mean absolute error for each
// sample"). Like Encode/Decode it mutates no model state, so concurrent
// scoring through one shared VAE is race-free: the matrix buffers come
// from a pooled workspace held only for the duration of the call.
func (v *VAE) Scores(x *mat.Matrix) []float64 {
	ws := mat.GetWorkspace()
	defer mat.Release(ws)
	return nn.RowMAE(v.reconstructInto(x, ws), x)
}

// Sample draws n new samples from the prior and decodes them — the
// generative direction of the model.
func (v *VAE) Sample(n int, rng *rand.Rand) *mat.Matrix {
	z := mat.Randn(n, v.Cfg.LatentDim, 1, rng)
	return v.Decode(z)
}

// TrainStats summarizes one training run.
type TrainStats struct {
	FinalLoss  float64
	FinalRecon float64
	FinalKL    float64
	Epochs     int
}

// Fit trains the VAE on x (healthy samples only, per the paper) and returns
// training statistics. Progress, if non-nil, is called every logEvery-ish
// epochs with the current epoch and loss components.
func (v *VAE) Fit(x *mat.Matrix, progress func(epoch int, loss, recon, kl float64)) (*TrainStats, error) {
	if x.Cols != v.Cfg.InputDim {
		return nil, fmt.Errorf("vae: input has %d features, config expects %d", x.Cols, v.Cfg.InputDim)
	}
	if x.Rows == 0 {
		return nil, errors.New("vae: empty training set")
	}
	rng := rand.New(rand.NewSource(v.Cfg.Seed + 1))
	opt := nn.NewAdam(v.Cfg.LearningRate)
	bs := v.Cfg.BatchSize
	if bs <= 0 || bs > x.Rows {
		bs = x.Rows
	}
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	// Data-parallel fit (DESIGN.md §11): the sharder owns per-worker
	// replicas of all four sub-networks (the two heads wrapped as
	// single-layer networks so they replicate like everything else),
	// per-worker workspaces and per-shard gradient accumulators; the
	// reduction order is fixed by the shard count, so the trained weights
	// are bit-identical for any Workers value. The minibatch buffer,
	// shard views and eps matrix below are fit-lifetime and refilled in
	// place — steady-state steps do not touch the allocator.
	muNet := &nn.Network{Layers: []nn.Layer{v.muHead}}
	lvNet := &nn.Network{Layers: []nn.Layer{v.logvarHead}}
	workers := nn.TrainConfig{Workers: v.Cfg.Workers}.EffectiveWorkers()
	sh := nn.NewSharder(workers, bs, []*nn.Network{v.encoder, muNet, lvNet, v.decoder}, nil)
	xb := &mat.Matrix{}
	epsFull := mat.New(bs, v.Cfg.LatentDim)
	epsB := &mat.Matrix{}
	xv := make([]*mat.Matrix, sh.Workers())
	ev := make([]*mat.Matrix, sh.Workers())
	for w := range xv {
		xv[w], ev[w] = &mat.Matrix{}, &mat.Matrix{}
	}
	reconShard := make([]float64, sh.MaxShards())
	klShard := make([]float64, sh.MaxShards())
	rows := 0
	klScale := 0.0
	// One shard closure for the whole fit; per-step state threads through
	// the captured variables above.
	step := func(w, shard, lo, hi int, train, _ []*nn.Network, ws *mat.Workspace) {
		srows := hi - lo
		xs := mat.RowsView(xv[w], xb, lo, hi)
		eps := mat.RowsView(ev[w], epsB, lo, hi)
		enc, muN, lvN, dec := train[0], train[1], train[2], train[3]

		// Forward.
		h := enc.ForwardInto(xs, ws)
		mu := muN.ForwardInto(h, ws)
		logvar := lvN.ForwardInto(h, ws)
		// Clamp log-variance; gradients pass straight through inside the
		// bound and are zeroed outside it. The mask is a float workspace
		// matrix (1 = clipped) rather than a fresh []bool.
		clipped := ws.Get(srows, v.Cfg.LatentDim)
		for i, lv := range logvar.Data {
			clipped.Data[i] = 0
			if lv > logvarBound || lv < -logvarBound {
				clipped.Data[i] = 1
				logvar.Data[i] = mat.Clamp(lv, -logvarBound, logvarBound)
			}
		}
		std := logvar.ApplyInto(ws.Get(srows, v.Cfg.LatentDim), func(lv float64) float64 { return math.Exp(0.5 * lv) })
		// Reparameterization trick (eq. 4): z = μ + σ⊙ε, with ε drawn
		// serially for the whole batch before the fan-out so the rng
		// stream is independent of the worker count.
		z := mat.MulInto(ws.Get(srows, v.Cfg.LatentDim), std, eps)
		mat.AddInto(z, mu, z)
		xr := dec.ForwardInto(z, ws)

		// Reconstruction term: MSE normalized by the shard, rescaled so the
		// summed shard gradients equal the batch-mean gradient. The factor
		// depends only on the shard boundaries, never the worker count.
		recon, gradXr := nn.MSELoss{}.ComputeInto(xr, xs, ws)
		gradXr.Scale(float64(srows) / float64(rows))
		reconShard[shard] = recon * float64(srows)

		// KL divergence to N(0, I): raw elementwise sum here, normalized
		// once per batch after the shard-ordered reduction.
		kl := 0.0
		for i := range mu.Data {
			m, lv := mu.Data[i], logvar.Data[i]
			kl += -0.5 * (1 + lv - m*m - math.Exp(lv))
		}
		klShard[shard] = kl

		// Backward through the decoder to z.
		gradZ := dec.BackwardInto(gradXr, ws)

		// Split gradZ into the μ and logvar paths, adding the KL gradients
		// (klScale carries the global batch normalization, so no further
		// shard scaling is needed on the KL terms).
		gradMu := ws.Get(srows, v.Cfg.LatentDim)
		gradLogvar := ws.Get(srows, v.Cfg.LatentDim)
		for i := range gradZ.Data {
			gz := gradZ.Data[i]
			m, lv := mu.Data[i], logvar.Data[i]
			// dz/dμ = 1; dKL/dμ = μ.
			gradMu.Data[i] = gz + klScale*m
			// dz/dlogvar = ε·σ/2; dKL/dlogvar = -1/2(1 - e^logvar).
			g := gz*eps.Data[i]*std.Data[i]*0.5 - klScale*0.5*(1-math.Exp(lv))
			if clipped.Data[i] > 0.5 {
				g = 0
			}
			gradLogvar.Data[i] = g
		}

		// Backward through the two heads into the shared encoder trunk; the
		// encoder input is data, so its innermost dx product is skipped.
		gh := muN.BackwardInto(gradMu, ws)
		mat.AddInPlace(gh, lvN.BackwardInto(gradLogvar, ws))
		enc.BackwardParamsInto(gh, ws)
	}
	params := v.params()
	stats := &TrainStats{Epochs: v.Cfg.Epochs}
	for epoch := 0; epoch < v.Cfg.Epochs; epoch++ {
		//lint:ignore detorder observability-only: epoch wall-clock feeds TrainStats and the progress callback, never weights or scores
		epochStart := time.Now()
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss, epochRecon, epochKL float64
		batches := 0
		for start := 0; start < len(idx); start += bs {
			end := start + bs
			if end > len(idx) {
				end = len(idx)
			}
			x.SelectRowsInto(xb, idx[start:end])
			rows = end - start
			norm := float64(rows) * float64(v.Cfg.InputDim)
			klScale = v.Cfg.Beta / norm
			mat.RandnInto(mat.RowsView(epsB, epsFull, 0, rows), 1, rng)
			shards := sh.Run(rows, step)
			sh.Reduce(shards)
			if v.Cfg.ClipNorm > 0 {
				nn.ClipGradients(params, v.Cfg.ClipNorm)
			}
			opt.Step(params)
			// Shard-ordered sums keep the reported losses deterministic
			// across worker counts too.
			var recon, kl float64
			for s := 0; s < shards; s++ {
				recon += reconShard[s]
				kl += klShard[s]
			}
			recon /= float64(rows)
			kl /= norm
			epochLoss += recon + v.Cfg.Beta*kl
			epochRecon += recon
			epochKL += kl
			batches++
		}
		stats.FinalLoss = epochLoss / float64(batches)
		stats.FinalRecon = epochRecon / float64(batches)
		stats.FinalKL = epochKL / float64(batches)
		nn.ObserveEpoch(stats.FinalLoss, len(idx), time.Since(epochStart))
		if math.IsNaN(stats.FinalLoss) {
			return nil, fmt.Errorf("vae: training diverged at epoch %d", epoch)
		}
		if progress != nil && (epoch%100 == 0 || epoch == v.Cfg.Epochs-1) {
			progress(epoch, stats.FinalLoss, stats.FinalRecon, stats.FinalKL)
		}
	}
	return stats, nil
}

func (v *VAE) params() []*nn.Param {
	ps := v.encoder.Params()
	ps = append(ps, v.muHead.Params()...)
	ps = append(ps, v.logvarHead.Params()...)
	ps = append(ps, v.decoder.Params()...)
	return ps
}

// NumParams returns the total trainable parameter count.
func (v *VAE) NumParams() int {
	total := 0
	for _, p := range v.params() {
		total += len(p.Value.Data)
	}
	return total
}

// persisted is the JSON envelope for a trained VAE.
type persisted struct {
	Cfg        Config          `json:"config"`
	Encoder    json.RawMessage `json:"encoder"`
	MuHead     json.RawMessage `json:"mu_head"`
	LogvarHead json.RawMessage `json:"logvar_head"`
	Decoder    json.RawMessage `json:"decoder"`
}

// MarshalJSON serializes the configuration and all weights.
func (v *VAE) MarshalJSON() ([]byte, error) {
	enc, err := json.Marshal(v.encoder)
	if err != nil {
		return nil, err
	}
	muNet := &nn.Network{Layers: []nn.Layer{v.muHead}}
	mu, err := json.Marshal(muNet)
	if err != nil {
		return nil, err
	}
	lvNet := &nn.Network{Layers: []nn.Layer{v.logvarHead}}
	lv, err := json.Marshal(lvNet)
	if err != nil {
		return nil, err
	}
	dec, err := json.Marshal(v.decoder)
	if err != nil {
		return nil, err
	}
	return json.Marshal(persisted{Cfg: v.Cfg, Encoder: enc, MuHead: mu, LogvarHead: lv, Decoder: dec})
}

// UnmarshalJSON restores a VAE serialized by MarshalJSON.
func (v *VAE) UnmarshalJSON(data []byte) error {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	v.Cfg = p.Cfg
	v.encoder = &nn.Network{}
	if err := json.Unmarshal(p.Encoder, v.encoder); err != nil {
		return err
	}
	v.decoder = &nn.Network{}
	if err := json.Unmarshal(p.Decoder, v.decoder); err != nil {
		return err
	}
	muNet := &nn.Network{}
	if err := json.Unmarshal(p.MuHead, muNet); err != nil {
		return err
	}
	lvNet := &nn.Network{}
	if err := json.Unmarshal(p.LogvarHead, lvNet); err != nil {
		return err
	}
	var ok bool
	if len(muNet.Layers) != 1 {
		return fmt.Errorf("vae: mu head has %d layers", len(muNet.Layers))
	}
	if v.muHead, ok = muNet.Layers[0].(*nn.Dense); !ok {
		return errors.New("vae: mu head is not a dense layer")
	}
	if len(lvNet.Layers) != 1 {
		return fmt.Errorf("vae: logvar head has %d layers", len(lvNet.Layers))
	}
	if v.logvarHead, ok = lvNet.Layers[0].(*nn.Dense); !ok {
		return errors.New("vae: logvar head is not a dense layer")
	}
	return nil
}
