package vae

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"prodigy/internal/mat"
)

// clusterData builds "healthy" samples around a few application-like
// centroids plus "anomalous" samples far from all of them.
func clusterData(nHealthy, nAnom, dim int, rng *rand.Rand) (healthy, anom *mat.Matrix) {
	centroids := mat.Randn(3, dim, 1.5, rng)
	healthy = mat.New(nHealthy, dim)
	for i := 0; i < nHealthy; i++ {
		c := centroids.Row(rng.Intn(3))
		for j := 0; j < dim; j++ {
			healthy.Set(i, j, c[j]+rng.NormFloat64()*0.05)
		}
	}
	anom = mat.New(nAnom, dim)
	for i := 0; i < nAnom; i++ {
		c := centroids.Row(rng.Intn(3))
		for j := 0; j < dim; j++ {
			// Shift a subset of features hard, like an injected anomaly.
			shift := 0.0
			if j%3 == 0 {
				shift = 3 + rng.Float64()
			}
			anom.Set(i, j, c[j]+shift+rng.NormFloat64()*0.05)
		}
	}
	return healthy, anom
}

func smallConfig(dim int) Config {
	cfg := DefaultConfig(dim)
	cfg.HiddenDims = []int{16}
	cfg.LatentDim = 4
	cfg.Epochs = 300
	cfg.BatchSize = 32
	cfg.LearningRate = 3e-3
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{InputDim: 0, LatentDim: 1, LearningRate: 1, Epochs: 1},
		{InputDim: 1, LatentDim: 0, LearningRate: 1, Epochs: 1},
		{InputDim: 1, LatentDim: 1, LearningRate: 0, Epochs: 1},
		{InputDim: 1, LatentDim: 1, LearningRate: 1, Epochs: 0},
		{InputDim: 1, LatentDim: 1, LearningRate: 1, Epochs: 1, Beta: -1},
		{InputDim: 1, LatentDim: 1, LearningRate: 1, Epochs: 1, HiddenDims: []int{0}},
	}
	for i, cfg := range bad {
		cfg := cfg
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	good := DefaultConfig(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFitReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	healthy, _ := clusterData(200, 0, 12, rng)
	cfg := smallConfig(12)
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first float64
	gotFirst := false
	stats, err := v.Fit(healthy, func(epoch int, loss, recon, kl float64) {
		if !gotFirst {
			first, gotFirst = loss, true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalLoss >= first/5 {
		t.Fatalf("loss %v -> %v: insufficient convergence", first, stats.FinalLoss)
	}
	if stats.FinalKL < 0 {
		t.Fatalf("KL must be non-negative, got %v", stats.FinalKL)
	}
}

// TestAnomalyScoreSeparation is the core behavioural test: after training on
// healthy data only, anomalous samples must have systematically higher
// reconstruction error.
func TestAnomalyScoreSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	healthy, anom := clusterData(300, 50, 16, rng)
	v, err := New(smallConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Fit(healthy, nil); err != nil {
		t.Fatal(err)
	}
	hs := v.Scores(healthy)
	as := v.Scores(anom)
	h99 := mat.Percentile(hs, 99)
	above := 0
	for _, s := range as {
		if s > h99 {
			above++
		}
	}
	if frac := float64(above) / float64(len(as)); frac < 0.9 {
		t.Fatalf("only %.0f%% of anomalies exceed the 99th-percentile threshold", frac*100)
	}
}

func TestFitValidation(t *testing.T) {
	v, err := New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Fit(mat.New(3, 7), nil); err == nil {
		t.Fatal("expected width-mismatch error")
	}
	if _, err := v.Fit(mat.New(0, 4), nil); err == nil {
		t.Fatal("expected empty-set error")
	}
}

func TestEncodeDecodeShapes(t *testing.T) {
	v, err := New(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := mat.Randn(5, 10, 1, rng)
	mu, logvar := v.Encode(x)
	if mu.Rows != 5 || mu.Cols != 4 || logvar.Rows != 5 || logvar.Cols != 4 {
		t.Fatalf("latent shapes %dx%d %dx%d", mu.Rows, mu.Cols, logvar.Rows, logvar.Cols)
	}
	xr := v.Decode(mu)
	if xr.Rows != 5 || xr.Cols != 10 {
		t.Fatalf("reconstruction shape %dx%d", xr.Rows, xr.Cols)
	}
	if s := v.Sample(7, rng); s.Rows != 7 || s.Cols != 10 {
		t.Fatalf("sample shape %dx%d", s.Rows, s.Cols)
	}
}

func TestScoresDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	healthy, _ := clusterData(50, 0, 8, rng)
	cfg := smallConfig(8)
	cfg.Epochs = 50
	v, _ := New(cfg)
	if _, err := v.Fit(healthy, nil); err != nil {
		t.Fatal(err)
	}
	a := v.Scores(healthy)
	b := v.Scores(healthy)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("inference must be deterministic (mean reconstruction)")
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	healthy, _ := clusterData(60, 0, 8, rng)
	cfg := smallConfig(8)
	cfg.Epochs = 60
	v, _ := New(cfg)
	if _, err := v.Fit(healthy, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	restored := &VAE{}
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Cfg.InputDim != 8 {
		t.Fatalf("restored config = %+v", restored.Cfg)
	}
	a := v.Scores(healthy)
	b := restored.Scores(healthy)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("restored VAE scores differ")
		}
	}
}

func TestSeedReproducibility(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	healthy, _ := clusterData(40, 0, 6, rng)
	cfg := smallConfig(6)
	cfg.Epochs = 40
	run := func() []float64 {
		v, _ := New(cfg)
		if _, err := v.Fit(healthy, nil); err != nil {
			t.Fatal(err)
		}
		return v.Scores(healthy)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical training runs")
		}
	}
}

func TestNoHiddenLayers(t *testing.T) {
	cfg := smallConfig(5)
	cfg.HiddenDims = nil
	cfg.Epochs = 20
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := mat.Randn(30, 5, 1, rng)
	if _, err := v.Fit(x, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scores are non-negative and finite for any finite input, and
// the KL term of a fit never goes negative.
func TestQuickScoresFinite(t *testing.T) {
	cfg := smallConfig(6)
	cfg.Epochs = 15
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v, err := New(cfg)
		if err != nil {
			return false
		}
		x := mat.Randn(20, 6, 2, rng)
		stats, err := v.Fit(x, nil)
		if err != nil || stats.FinalKL < -1e-9 {
			return false
		}
		for _, s := range v.Scores(x) {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
