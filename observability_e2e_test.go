package prodigy

// End-to-end demo of the model-health observability stack (DESIGN.md §13):
// one core.Prodigy wired to the in-process tsdb, the alert engine and the
// HTTP server exactly as cmd/prodigyd wires them — but on an injected
// clock, so the scrape loop, alert evaluation and baseline lifecycle run
// deterministically and the test never sleeps.

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prodigy/internal/core"
	"prodigy/internal/dsos"
	"prodigy/internal/mat"
	"prodigy/internal/obs/alert"
	"prodigy/internal/obs/tsdb"
	"prodigy/internal/pipeline"
	"prodigy/internal/server"
	"prodigy/internal/vae"
)

// e2eClock is a mutex-guarded fake clock injected into the tsdb store.
type e2eClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *e2eClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *e2eClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// e2eProdigy trains a small Prodigy on a synthetic labeled dataset —
// enough structure for chi-square selection and a stable VAE fit without
// running the full campaign simulator.
func e2eProdigy(t *testing.T) *core.Prodigy {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	n, dim := 256, 60
	ds := &pipeline.Dataset{X: mat.Randn(n, dim, 1, rng)}
	ds.Meta = make([]pipeline.SampleMeta, n)
	for i := range ds.Meta {
		ds.Meta[i].Label = pipeline.Healthy
		if i%10 == 0 {
			ds.Meta[i].Label = pipeline.Anomalous
		}
	}
	cfg := core.DefaultConfig()
	cfg.VAE = vae.Config{
		HiddenDims: []int{24}, LatentDim: 4, Activation: "tanh",
		LearningRate: 3e-3, BatchSize: 64, Epochs: 30, ClipNorm: 5, Seed: 1,
	}
	cfg.Trainer = pipeline.TrainerConfig{TopK: 40, ThresholdPercentile: 99, ScalerKind: "minmax"}
	p := core.New(cfg)
	if err := p.Fit(ds, nil); err != nil {
		t.Fatal(err)
	}
	return p
}

// e2eTraffic builds a healthy batch drawn from the training distribution
// and a degenerate variant far outside it.
func e2eTraffic() (healthy, shifted *mat.Matrix) {
	rng := rand.New(rand.NewSource(11))
	healthy = mat.Randn(64, 60, 1, rng)
	shifted = &mat.Matrix{Rows: healthy.Rows, Cols: healthy.Cols, Data: append([]float64(nil), healthy.Data...)}
	for i := range shifted.Data {
		shifted.Data[i] = shifted.Data[i]*10 + 100
	}
	return healthy, shifted
}

func e2eGet(t *testing.T, srv http.Handler, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.Bytes()
}

type alertsPayload struct {
	Firing int `json:"firing"`
	Alerts []struct {
		Rule struct {
			Name string `json:"name"`
		} `json:"rule"`
		State string  `json:"state"`
		Value float64 `json:"value"`
	} `json:"alerts"`
}

func e2eAlerts(t *testing.T, srv http.Handler) alertsPayload {
	t.Helper()
	code, body := e2eGet(t, srv, "/api/alerts")
	if code != http.StatusOK {
		t.Fatalf("/api/alerts: status %d: %s", code, body)
	}
	var resp alertsPayload
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestObservabilityEndToEnd drives the full demo from the issue: score
// traffic and read it back on /api/timeseries, push a degenerate score
// distribution through the deployed model until the score-shift alert
// fires on /api/alerts, swap back to the healthy artifact and watch it
// resolve, and render the self-contained dashboard.
func TestObservabilityEndToEnd(t *testing.T) {
	p := e2eProdigy(t)
	healthy, shifted := e2eTraffic()
	clk := &e2eClock{t: time.Unix(1750000000, 0)}

	// Wire tsdb → alert engine → server the way cmd/prodigyd does: every
	// scrape triggers one alert evaluation at the scrape timestamp.
	var eng *alert.Engine
	store := tsdb.New(nil, tsdb.Config{
		Interval:    5 * time.Second,
		Retention:   512,
		Now:         clk.Now,
		AfterScrape: func(ts time.Time) { eng.Eval(ts) },
	})
	eng = alert.NewEngine(store, p.ScoreShift, nil)
	if err := eng.SetRules([]alert.Rule{{
		Name:      "score-distribution-shift",
		Kind:      alert.KindScoreShift,
		Threshold: 0.01, // KS p-value
		MinCount:  128,
		Severity:  "page",
	}}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(dsos.NewStore(), p)
	srv.TSDB = store
	srv.Alerts = eng

	// step scores one batch, advances the clock one scrape interval and
	// scrapes — one tick of production time.
	step := func(x *mat.Matrix, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			p.Scores(x)
			clk.Advance(5 * time.Second)
			store.ScrapeOnce()
		}
	}

	// 1. Healthy traffic lands in the store: the scoring-latency histogram
	// is queryable over time via /api/timeseries.
	step(healthy, 4)
	code, body := e2eGet(t, srv,
		"/api/timeseries?name=pipeline_batch_score_seconds_count&agg=rate&window=30s&path=serial")
	if code != http.StatusOK {
		t.Fatalf("/api/timeseries: status %d: %s", code, body)
	}
	var ts struct {
		Series []struct {
			Points []struct {
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &ts); err != nil {
		t.Fatal(err)
	}
	if len(ts.Series) == 0 || len(ts.Series[0].Points) == 0 {
		t.Fatalf("scoring latency series empty after traffic: %s", body)
	}
	last := ts.Series[0].Points[len(ts.Series[0].Points)-1]
	if last.V <= 0 {
		t.Fatalf("scoring batch rate not positive: %v", last.V)
	}

	// 2. Deploying a new artifact adopts the healthy outgoing distribution
	// as the score-shift baseline.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	art, err := pipeline.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Swap(art); err != nil {
		t.Fatal(err)
	}

	// Healthy traffic on the new detector matches the baseline: no alert.
	step(healthy, 3)
	if a := e2eAlerts(t, srv); a.Firing != 0 {
		t.Fatalf("alert firing on healthy traffic: %+v", a)
	}

	// 3. Degenerate traffic — inputs far outside the training range blow
	// up the reconstruction error and shift the live score distribution.
	// With For=0 the rule fires as soon as the sketch carries MinCount
	// observations of the shifted shape.
	step(shifted, 6)
	a := e2eAlerts(t, srv)
	if a.Firing != 1 || len(a.Alerts) != 1 {
		t.Fatalf("score-shift alert not firing after degenerate traffic: %+v", a)
	}
	if a.Alerts[0].Rule.Name != "score-distribution-shift" || a.Alerts[0].State != "firing" {
		t.Fatalf("wrong alert fired: %+v", a.Alerts[0])
	}
	if a.Alerts[0].Value >= 0.01 {
		t.Fatalf("firing alert carries non-significant p-value %v", a.Alerts[0].Value)
	}

	// 4. Swapping back to the healthy artifact starts a fresh live sketch;
	// healthy traffic rebuilds it and the alert resolves. The degenerate
	// outgoing distribution must NOT have been adopted as baseline (the KS
	// adoption gate), or this would *stay* firing.
	if err := p.Swap(art); err != nil {
		t.Fatal(err)
	}
	step(healthy, 3)
	a = e2eAlerts(t, srv)
	if a.Firing != 0 {
		t.Fatalf("score-shift alert did not resolve after swapping back: %+v", a)
	}
	if a.Alerts[0].State != "resolved" {
		t.Fatalf("alert state after recovery = %q, want resolved: %+v", a.Alerts[0].State, a)
	}

	// 5. The dashboard renders self-contained: no external assets.
	code, body = e2eGet(t, srv, "/dashboard")
	if code != http.StatusOK {
		t.Fatalf("/dashboard: status %d", code)
	}
	page := string(body)
	if !strings.Contains(page, "Prodigy model health") {
		t.Fatal("dashboard missing title")
	}
	for _, banned := range []string{"<link", "src=", "@import", "url("} {
		if strings.Contains(page, banned) {
			t.Errorf("dashboard contains external-asset marker %q", banned)
		}
	}
	stripped := strings.ReplaceAll(page, "http://www.w3.org/2000/svg", "")
	if strings.Contains(stripped, "http://") || strings.Contains(stripped, "https://") {
		t.Error("dashboard references an absolute URL")
	}
}
