//go:build !race

package prodigy

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates and sync.Pool randomly drops items under it,
// so allocation pins are skipped under -race.
const raceEnabled = false
